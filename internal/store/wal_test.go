package store

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"crowdassess/internal/crowd"
)

func testBatch(i int) []Response {
	return []Response{
		{Worker: i % 5, Task: i, Answer: crowd.Yes},
		{Worker: (i + 1) % 5, Task: i, Answer: crowd.No},
	}
}

func openTestLog(t *testing.T, fsys FS, dir string, opts Options) *DiskLog {
	t.Helper()
	l, err := OpenLog(fsys, dir, opts)
	if err != nil {
		t.Fatalf("OpenLog: %v", err)
	}
	t.Cleanup(func() { l.Close() })
	return l
}

// collect replays the whole log into a slice.
func collect(t *testing.T, l *DiskLog, from uint64) []Record {
	t.Helper()
	var recs []Record
	if err := l.Replay(from, func(r Record) error {
		recs = append(recs, r)
		return nil
	}); err != nil {
		t.Fatalf("Replay: %v", err)
	}
	return recs
}

func TestLogAppendReplayAcrossRotations(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments force many rotations.
	opts := Options{SegmentSize: 128, Fsync: FsyncAlways}
	l := openTestLog(t, OSFS{}, dir, opts)
	const n = 50
	for i := 0; i < n; i++ {
		seq, err := l.Append(testBatch(i))
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		if seq != uint64(i+1) {
			t.Fatalf("append %d assigned seq %d", i, seq)
		}
	}
	recs := collect(t, l, 1)
	if len(recs) != n {
		t.Fatalf("replayed %d records, want %d", len(recs), n)
	}
	for i, r := range recs {
		if r.Seq != uint64(i+1) || r.Responses[0].Task != i {
			t.Fatalf("record %d: %+v", i, r)
		}
	}
	names, _ := OSFS{}.ReadDir(dir)
	segs := 0
	for _, name := range names {
		if _, ok := parseSegName(name); ok {
			segs++
		}
	}
	if segs < 3 {
		t.Fatalf("expected multiple segments, have %d", segs)
	}
	// Reopen: same contents, appends continue from the same counter.
	l.Close()
	l2 := openTestLog(t, OSFS{}, dir, opts)
	if l2.LastSeq() != n {
		t.Fatalf("reopened LastSeq = %d, want %d", l2.LastSeq(), n)
	}
	if got := collect(t, l2, 1); len(got) != n {
		t.Fatalf("reopened replay has %d records", len(got))
	}
	if seq, err := l2.Append(testBatch(n)); err != nil || seq != n+1 {
		t.Fatalf("append after reopen: seq=%d err=%v", seq, err)
	}
	// Replay-from filters are exact.
	if tail := collect(t, l2, n); len(tail) != 2 {
		t.Fatalf("tail replay from %d has %d records, want 2", n, len(tail))
	}
}

func TestLogRecoveryTruncatesTornTail(t *testing.T) {
	dir := t.TempDir()
	opts := Options{SegmentSize: 1 << 20, Fsync: FsyncAlways}
	l := openTestLog(t, OSFS{}, dir, opts)
	for i := 0; i < 10; i++ {
		if _, err := l.Append(testBatch(i)); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()

	// Tear the last frame: chop 3 bytes off the single segment.
	names, _ := OSFS{}.ReadDir(dir)
	var seg string
	for _, name := range names {
		if _, ok := parseSegName(name); ok {
			seg = filepath.Join(dir, name)
		}
	}
	info, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(seg, info.Size()-3); err != nil {
		t.Fatal(err)
	}

	l2 := openTestLog(t, OSFS{}, dir, opts)
	if l2.LastSeq() != 9 {
		t.Fatalf("after torn tail LastSeq = %d, want 9", l2.LastSeq())
	}
	if l2.Recovery().TruncatedBytes == 0 {
		t.Fatal("recovery reported no truncated bytes")
	}
	if got := collect(t, l2, 1); len(got) != 9 {
		t.Fatalf("replay has %d records, want 9", len(got))
	}
	// The log stays appendable; record 10 gets seq 10 again.
	if seq, err := l2.Append(testBatch(9)); err != nil || seq != 10 {
		t.Fatalf("append after recovery: seq=%d err=%v", seq, err)
	}
}

func TestLogRecoveryDropsSegmentsAfterCorruption(t *testing.T) {
	dir := t.TempDir()
	opts := Options{SegmentSize: 128, Fsync: FsyncAlways}
	l := openTestLog(t, OSFS{}, dir, opts)
	for i := 0; i < 30; i++ {
		if _, err := l.Append(testBatch(i)); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	names, _ := OSFS{}.ReadDir(dir)
	var segs []string
	for _, name := range names {
		if _, ok := parseSegName(name); ok {
			segs = append(segs, name)
		}
	}
	// Fixed-width segment names make ReadDir's lexicographic order the
	// sequence order — relied on here and pinned by this assertion.
	for i := 1; i < len(segs); i++ {
		a, _ := parseSegName(segs[i-1])
		b, _ := parseSegName(segs[i])
		if a >= b {
			t.Fatalf("segment names out of sequence order: %v", segs)
		}
	}
	if len(segs) < 3 {
		t.Fatalf("need ≥3 segments, have %d", len(segs))
	}
	// Flip a byte in the middle of the second segment's record area.
	victim := filepath.Join(dir, segs[1])
	data, err := os.ReadFile(victim)
	if err != nil {
		t.Fatal(err)
	}
	data[segHeaderLen+10] ^= 0xff
	if err := os.WriteFile(victim, data, 0o644); err != nil {
		t.Fatal(err)
	}

	l2 := openTestLog(t, OSFS{}, dir, opts)
	recs := collect(t, l2, 1)
	if len(recs) == 0 || len(recs) >= 30 {
		t.Fatalf("replay has %d records, want a strict prefix", len(recs))
	}
	for i, r := range recs {
		if r.Seq != uint64(i+1) {
			t.Fatalf("record %d has seq %d", i, r.Seq)
		}
	}
	if l2.Recovery().DroppedSegments == 0 {
		t.Fatal("recovery reported no dropped segments")
	}
	if l2.LastSeq() != uint64(len(recs)) {
		t.Fatalf("LastSeq %d != %d replayed records", l2.LastSeq(), len(recs))
	}
	// Later segment files are gone from disk.
	after, _ := OSFS{}.ReadDir(dir)
	for _, name := range after {
		if name == segs[len(segs)-1] {
			t.Fatalf("segment %s survived past the corruption point", name)
		}
	}
}

func TestLogTruncateBeforeKeepsNewestSegment(t *testing.T) {
	dir := t.TempDir()
	opts := Options{SegmentSize: 128, Fsync: FsyncAlways}
	l := openTestLog(t, OSFS{}, dir, opts)
	for i := 0; i < 30; i++ {
		if _, err := l.Append(testBatch(i)); err != nil {
			t.Fatal(err)
		}
	}
	last := l.LastSeq()
	if err := l.TruncateBefore(last + 1); err != nil {
		t.Fatalf("TruncateBefore: %v", err)
	}
	names, _ := OSFS{}.ReadDir(dir)
	segs := 0
	for _, name := range names {
		if _, ok := parseSegName(name); ok {
			segs++
		}
	}
	if segs != 1 {
		t.Fatalf("%d segments survive full truncation, want exactly the newest", segs)
	}
	// Replay from the snapshot point yields nothing; the counter survives
	// a reopen because the newest segment was retained.
	if tail := collect(t, l, last+1); len(tail) != 0 {
		t.Fatalf("tail replay has %d records", len(tail))
	}
	l.Close()
	l2 := openTestLog(t, OSFS{}, dir, opts)
	if l2.LastSeq() != last {
		t.Fatalf("reopened LastSeq = %d, want %d", l2.LastSeq(), last)
	}
	if seq, err := l2.Append(testBatch(30)); err != nil || seq != last+1 {
		t.Fatalf("append after truncate+reopen: seq=%d err=%v", seq, err)
	}
}

func TestLogGroupCommitAndManualSync(t *testing.T) {
	dir := t.TempDir()
	l := openTestLog(t, OSFS{}, dir, Options{Fsync: FsyncInterval, FsyncEvery: time.Hour})
	if _, err := l.Append(testBatch(0)); err != nil {
		t.Fatal(err)
	}
	if !l.dirty {
		t.Fatal("append under FsyncInterval should leave the segment dirty")
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if l.dirty {
		t.Fatal("manual Sync should clear dirty")
	}
}

func TestLogAppendRejectsEmptyBatch(t *testing.T) {
	l := openTestLog(t, OSFS{}, t.TempDir(), Options{})
	if _, err := l.Append(nil); err == nil {
		t.Fatal("empty batch accepted")
	}
}

func TestLogAppendSplitsOversizedBatch(t *testing.T) {
	// A batch whose single-record encoding exceeds maxRecordPayload.
	// DecodeRecord rejects such frames as corrupt, so journaling one
	// unsplit would make the next recovery silently truncate acked data —
	// the append path must keep every frame it writes under the bound.
	batch := make([]Response, maxBatchResponses+3)
	for i := range batch {
		// Large indices and a two-byte answer give the worst-case 12-byte
		// encoding the chunk bound is derived from.
		batch[i] = Response{Worker: maxInt31, Task: maxInt31, Answer: crowd.Response(128 + i%128)}
	}
	if n := len(encodeBatchPayload(nil, batch)); n <= maxRecordPayload {
		t.Fatalf("test batch encodes to %d bytes, want > %d", n, maxRecordPayload)
	}

	dir := t.TempDir()
	opts := Options{Fsync: FsyncNever}
	l := openTestLog(t, OSFS{}, dir, opts)
	seq, err := l.Append(batch)
	if err != nil {
		t.Fatalf("oversized batch append: %v", err)
	}
	if seq != 2 {
		t.Fatalf("oversized batch assigned last seq %d, want 2 (split into two records)", seq)
	}
	check := func(l *DiskLog) {
		t.Helper()
		recs := collect(t, l, 1)
		var got []Response
		for i, r := range recs {
			if r.Seq != uint64(i+1) {
				t.Fatalf("record %d has seq %d", i, r.Seq)
			}
			if n := len(encodeBatchPayload(nil, r.Responses)); n > maxRecordPayload {
				t.Fatalf("record %d payload is %d bytes, above the decode bound", i, n)
			}
			got = append(got, r.Responses...)
		}
		if len(got) != len(batch) {
			t.Fatalf("replayed %d responses, want %d", len(got), len(batch))
		}
		for i := range got {
			if got[i] != batch[i] {
				t.Fatalf("response %d replayed as %+v, want %+v", i, got[i], batch[i])
			}
		}
	}
	check(l)
	l.Close()
	// The decisive half: reopen-time recovery must accept every frame
	// rather than treating the batch as corruption.
	l2 := openTestLog(t, OSFS{}, dir, opts)
	if info := l2.Recovery(); info.TruncatedBytes != 0 || info.DroppedSegments != 0 {
		t.Fatalf("recovery repaired a healthy log: %+v", info)
	}
	if l2.LastSeq() != 2 {
		t.Fatalf("reopened LastSeq = %d, want 2", l2.LastSeq())
	}
	check(l2)
}

func TestLogAppendRejectsUnjournalableResponses(t *testing.T) {
	// Fields the decoder would refuse must be rejected before they reach
	// disk: a journaled-but-undecodable record reads back as corruption
	// and truncates the log there on recovery.
	l := openTestLog(t, OSFS{}, t.TempDir(), Options{})
	bad := [][]Response{
		{{Worker: -1, Task: 0, Answer: crowd.Yes}},
		{{Worker: 0, Task: -3, Answer: crowd.Yes}},
		{{Worker: 0, Task: 0, Answer: crowd.None}},
		{{Worker: 0, Task: 0, Answer: crowd.Response(300)}},
	}
	for i, batch := range bad {
		if _, err := l.Append(batch); err == nil {
			t.Fatalf("case %d: undecodable batch journaled", i)
		}
	}
	if l.LastSeq() != 0 {
		t.Fatalf("rejected batches advanced the sequence counter to %d", l.LastSeq())
	}
	if seq, err := l.Append(testBatch(0)); err != nil || seq != 1 {
		t.Fatalf("valid append after rejections: seq=%d err=%v", seq, err)
	}
}

func TestLogRecoverySyncsTruncatedTail(t *testing.T) {
	dir := t.TempDir()
	opts := Options{SegmentSize: 1 << 20, Fsync: FsyncAlways}
	l := openTestLog(t, OSFS{}, dir, opts)
	for i := 0; i < 10; i++ {
		if _, err := l.Append(testBatch(i)); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	names, _ := OSFS{}.ReadDir(dir)
	var seg string
	for _, name := range names {
		if _, ok := parseSegName(name); ok {
			seg = filepath.Join(dir, name)
		}
	}
	info, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(seg, info.Size()-3); err != nil {
		t.Fatal(err)
	}
	// Recovery must fsync the cut before the log accepts new appends, and
	// a failing sync has to surface — a truncation living only in the page
	// cache can resurface after power loss, underneath records acked since.
	ffs := NewFaultFS(OSFS{})
	ffs.SetSyncError(errors.New("injected sync failure"))
	if _, err := OpenLog(ffs, dir, opts); err == nil || !strings.Contains(err.Error(), "sync truncated segment") {
		t.Fatalf("recovery with unsyncable truncation: %v, want surfaced sync failure", err)
	}
	ffs.SetSyncError(nil)
	l2 := openTestLog(t, ffs, dir, opts)
	if l2.LastSeq() != 9 {
		t.Fatalf("recovered LastSeq = %d, want 9", l2.LastSeq())
	}
}

func TestLogSegmentCreateFailureIsRetryable(t *testing.T) {
	ffs := NewFaultFS(OSFS{})
	dir := t.TempDir()
	l := openTestLog(t, ffs, dir, Options{Fsync: FsyncAlways})
	// Fail the very first write — the new segment's header. The partial
	// O_EXCL-created file must not survive to wedge every retry on a
	// misleading "file exists".
	ffs.SetWriteBudget(5, FaultENOSPC)
	if _, err := l.Append(testBatch(0)); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("append with failing header write: %v, want ErrNoSpace", err)
	}
	ffs.SetWriteBudget(-1, FaultNone)
	seq, err := l.Append(testBatch(0))
	if err != nil || seq != 1 {
		t.Fatalf("retry after header write failure: seq=%d err=%v", seq, err)
	}
	if got := collect(t, l, 1); len(got) != 1 {
		t.Fatalf("replay has %d records, want 1", len(got))
	}
}

func TestLogENOSPCFailsClosed(t *testing.T) {
	ffs := NewFaultFS(OSFS{})
	dir := t.TempDir()
	l := openTestLog(t, ffs, dir, Options{Fsync: FsyncAlways})
	if _, err := l.Append(testBatch(0)); err != nil {
		t.Fatal(err)
	}
	ffs.SetWriteBudget(5, FaultENOSPC)
	if _, err := l.Append(testBatch(1)); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("append on full disk: %v, want ErrNoSpace", err)
	}
	// The torn frame poisons the handle until reopened.
	ffs.SetWriteBudget(-1, FaultNone)
	if _, err := l.Append(testBatch(2)); !errors.Is(err, ErrLogFailed) {
		t.Fatalf("append after write error: %v, want ErrLogFailed", err)
	}
	l.Close()
	// Recovery truncates the torn frame; only the acked record survives.
	l2 := openTestLog(t, ffs, dir, Options{Fsync: FsyncAlways})
	if l2.LastSeq() != 1 {
		t.Fatalf("recovered LastSeq = %d, want 1", l2.LastSeq())
	}
}

func TestLogCrashAtOffsetLosesNoAckedRecords(t *testing.T) {
	ffs := NewFaultFS(OSFS{})
	dir := t.TempDir()
	opts := Options{SegmentSize: 256, Fsync: FsyncAlways}
	l := openTestLog(t, ffs, dir, opts)
	// Arm a crash somewhere mid-stream, then append until it fires.
	ffs.SetWriteBudget(700, FaultCrash)
	acked := 0
	for i := 0; i < 1000; i++ {
		if _, err := l.Append(testBatch(i)); err != nil {
			if !errors.Is(err, ErrCrashed) {
				t.Fatalf("append %d failed with %v, want ErrCrashed", i, err)
			}
			break
		}
		acked++
	}
	if acked == 0 || acked == 1000 {
		t.Fatalf("crash never fired usefully (acked %d)", acked)
	}
	l.Close()

	// "Restart": the torn bytes stay on disk exactly as the crash left
	// them; recovery must surface every acked record and nothing after.
	ffs.Revive()
	l2 := openTestLog(t, ffs, dir, opts)
	recs := collect(t, l2, 1)
	if len(recs) != acked {
		t.Fatalf("recovered %d records, acked %d", len(recs), acked)
	}
	for i, r := range recs {
		if r.Seq != uint64(i+1) || r.Responses[0].Task != i {
			t.Fatalf("record %d corrupted by recovery: %+v", i, r)
		}
	}
}

func TestSnapshotsSaveLatestAndPrune(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenSnapshots(OSFS{}, dir, Options{KeepSnapshots: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := s.Latest(); ok || err != nil {
		t.Fatalf("empty store: ok=%v err=%v", ok, err)
	}
	for seq := uint64(10); seq <= 40; seq += 10 {
		if err := s.Save(seq, []byte{byte(seq)}); err != nil {
			t.Fatalf("save %d: %v", seq, err)
		}
	}
	snap, ok, err := s.Latest()
	if err != nil || !ok || snap.Seq != 40 || !bytes.Equal(snap.Payload, []byte{40}) {
		t.Fatalf("latest: %+v ok=%v err=%v", snap, ok, err)
	}
	names, _ := OSFS{}.ReadDir(dir)
	kept := 0
	for _, name := range names {
		if _, ok := parseSnapName(name); ok {
			kept++
		}
	}
	if kept != 2 {
		t.Fatalf("%d snapshots kept, want 2", kept)
	}
}

func TestSnapshotsLatestSkipsCorrupt(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenSnapshots(OSFS{}, dir, Options{KeepSnapshots: 3})
	if err != nil {
		t.Fatal(err)
	}
	for seq := uint64(1); seq <= 3; seq++ {
		if err := s.Save(seq, []byte{byte(seq)}); err != nil {
			t.Fatal(err)
		}
	}
	// Corrupt the newest: Latest must fall back to seq 2, not error out.
	newest := filepath.Join(dir, snapName(3))
	data, _ := os.ReadFile(newest)
	data[len(data)-1] ^= 0x01
	if err := os.WriteFile(newest, data, 0o644); err != nil {
		t.Fatal(err)
	}
	snap, ok, err := s.Latest()
	if err != nil || !ok || snap.Seq != 2 {
		t.Fatalf("latest after corruption: %+v ok=%v err=%v", snap, ok, err)
	}
	// Corrupt all: candidates exist, none valid → ok=false with an error.
	for seq := uint64(1); seq <= 2; seq++ {
		p := filepath.Join(dir, snapName(seq))
		if err := os.WriteFile(p, []byte("garbage"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok, err := s.Latest(); ok || err == nil {
		t.Fatalf("all-corrupt store: ok=%v err=%v, want ok=false with error", ok, err)
	}
}

func TestStoreRecoverSnapshotPlusTail(t *testing.T) {
	dir := t.TempDir()
	opts := Options{SegmentSize: 256, Fsync: FsyncAlways}
	st, err := Open(OSFS{}, dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if _, err := st.Log.Append(testBatch(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Snapshot at seq 12, compact the prefix.
	if err := st.Snapshots.Save(12, []byte("state@12")); err != nil {
		t.Fatal(err)
	}
	if err := st.Log.TruncateBefore(13); err != nil {
		t.Fatal(err)
	}
	st.Close()

	st2, err := Open(OSFS{}, dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	var restored []byte
	var tail []uint64
	err = st2.Recover(
		func(s Snapshot) error { restored = s.Payload; return nil },
		func(r Record) error { tail = append(tail, r.Seq); return nil },
	)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if string(restored) != "state@12" {
		t.Fatalf("restored payload %q", restored)
	}
	if len(tail) != 8 || tail[0] != 13 || tail[len(tail)-1] != 20 {
		t.Fatalf("tail replay %v, want seqs 13..20", tail)
	}
}

func TestStoreRecoverRefusesLostPrefix(t *testing.T) {
	dir := t.TempDir()
	opts := Options{SegmentSize: 256, Fsync: FsyncAlways}
	st, err := Open(OSFS{}, dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if _, err := st.Log.Append(testBatch(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Snapshots.Save(12, []byte("state@12")); err != nil {
		t.Fatal(err)
	}
	if err := st.Log.TruncateBefore(13); err != nil {
		t.Fatal(err)
	}
	st.Close()
	// Destroy every snapshot: the log alone no longer covers seqs 1..12.
	names, _ := OSFS{}.ReadDir(dir)
	for _, name := range names {
		if _, ok := parseSnapName(name); ok {
			if err := os.WriteFile(filepath.Join(dir, name), []byte("junk"), 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
	st2, err := Open(OSFS{}, dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	err = st2.Recover(func(Snapshot) error { return nil }, func(Record) error { return nil })
	if err == nil {
		t.Fatal("recovery served partial state")
	}
}

func TestWriteFileAtomicSyncsParentDir(t *testing.T) {
	ffs := NewFaultFS(OSFS{})
	dir := t.TempDir()
	path := filepath.Join(dir, "target")
	if err := WriteFileAtomic(ffs, path, []byte("payload"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil || string(got) != "payload" {
		t.Fatalf("read back: %q err=%v", got, err)
	}
	// A failing directory fsync must surface: rename alone is not durable.
	ffs.SetSyncError(errors.New("injected dir sync failure"))
	err = WriteFileAtomic(ffs, path, []byte("v2"), 0o644)
	if err == nil || !strings.Contains(err.Error(), "sync") {
		t.Fatalf("dir sync failure swallowed: %v", err)
	}
}
