package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"

	"crowdassess/internal/obs"
)

// Log is the write-ahead journal the ingest path appends to before acking.
// Sequence numbers are assigned contiguously starting at 1; replay filters
// on them, so re-applying a tail that overlaps an already-restored
// snapshot is idempotent by construction.
type Log interface {
	// Append journals one accepted batch and returns its sequence number.
	// When it returns nil under the per-record fsync policy, the batch is
	// on stable storage; under group-commit or no-fsync policies the
	// durability window is the caller's chosen tradeoff.
	Append(responses []Response) (uint64, error)
	// LastSeq returns the highest sequence number ever appended (0 if
	// none).
	LastSeq() uint64
	// Replay streams every record with Seq >= from, in sequence order.
	Replay(from uint64, fn func(Record) error) error
	// TruncateBefore drops log prefixes wholly below seq — called after a
	// snapshot at seq-1 has been made durable. It only removes whole
	// segments, so some records below seq may survive; replay's sequence
	// filter makes the overlap harmless.
	TruncateBefore(seq uint64) error
	// Sync forces buffered appends to stable storage regardless of policy.
	Sync() error
	// Close syncs (under durable policies) and releases the log.
	Close() error
}

// FsyncPolicy selects when appends reach stable storage.
type FsyncPolicy int

const (
	// FsyncAlways syncs after every append: an acked batch survives
	// power loss. The safest and slowest policy.
	FsyncAlways FsyncPolicy = iota
	// FsyncInterval group-commits: a background flusher syncs dirty
	// segments every Options.FsyncEvery. Bounded data loss (one interval)
	// for near-no-fsync throughput.
	FsyncInterval
	// FsyncNever performs no fsync at all — process crashes lose nothing
	// (the OS still has the writes), machine crashes lose the page cache.
	FsyncNever
)

// ParseFsyncPolicy maps the flag spellings to a policy.
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch s {
	case "always":
		return FsyncAlways, nil
	case "interval":
		return FsyncInterval, nil
	case "never":
		return FsyncNever, nil
	}
	return 0, fmt.Errorf("store: unknown fsync policy %q (want always, interval or never)", s)
}

// Options configures the disk-backed engine.
type Options struct {
	// SegmentSize rotates the active segment once it exceeds this many
	// bytes (default 4 MiB).
	SegmentSize int64
	// Fsync selects the append durability policy (default FsyncAlways).
	Fsync FsyncPolicy
	// FsyncEvery is the group-commit interval under FsyncInterval
	// (default 50ms).
	FsyncEvery time.Duration
	// KeepSnapshots bounds how many snapshot generations Save retains
	// (default 2: the newest plus one fallback).
	KeepSnapshots int
	// Obs, when set, wires the engine into an observability registry:
	// append/fsync/snapshot latency histograms and segment/truncation
	// counters (see internal/obs). Nil disables instrumentation; the
	// engine never makes a decision from these readings.
	Obs *obs.Registry
}

func (o Options) withDefaults() Options {
	if o.SegmentSize <= 0 {
		o.SegmentSize = 4 << 20
	}
	if o.FsyncEvery <= 0 {
		o.FsyncEvery = 50 * time.Millisecond
	}
	if o.KeepSnapshots <= 0 {
		o.KeepSnapshots = 2
	}
	return o
}

// Segment files: wal-<firstSeq as %016x>.seg, a 17-byte self-checking
// header followed by framed records. The header pins the first sequence
// number the segment may contain, cross-checked against the filename.
const (
	segMagic     = "CAWL"
	segVersion   = 1
	segHeaderLen = 4 + 1 + 8 + 4 // magic + version + firstSeq + CRC
	segPrefix    = "wal-"
	segSuffix    = ".seg"
)

// ErrLogFailed reports an append after a prior write error: the segment
// tail is in an unknown state, so the log refuses to interleave more
// frames. Reopen the log to run recovery.
var ErrLogFailed = errors.New("store: log failed; reopen to recover")

// ErrClosed reports use after Close.
var ErrClosed = errors.New("store: closed")

// RecoveryInfo summarizes what OpenLog had to repair.
type RecoveryInfo struct {
	// TruncatedBytes is how many trailing bytes were cut from a torn or
	// corrupt segment.
	TruncatedBytes int64
	// DroppedSegments counts segments discarded because they followed a
	// corruption point (or were empty leftovers of an interrupted
	// rotation).
	DroppedSegments int
}

type segInfo struct {
	name  string
	first uint64
}

// DiskLog is the local-disk Log. All methods are safe for concurrent use.
type DiskLog struct {
	fsys    FS
	dir     string
	opts    Options
	metrics *storeMetrics // nil when Options.Obs is unset

	mu       sync.Mutex
	segments []segInfo // on-disk segments, ascending; includes the active one
	seg      File      // active segment handle, nil until first append
	segSize  int64
	lastSeq  uint64
	dirty    bool
	failed   bool
	closed   bool
	recovery RecoveryInfo

	flushStop chan struct{}
	flushDone chan struct{}
}

func segName(first uint64) string {
	// Fixed-width hex so lexicographic directory order is sequence order.
	return segPrefix + fmt.Sprintf("%016x", first) + segSuffix
}

// parseSegName returns the first-seq encoded in a segment filename.
func parseSegName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
		return 0, false
	}
	hex := name[len(segPrefix) : len(name)-len(segSuffix)]
	if hex == "" {
		return 0, false
	}
	first, err := strconv.ParseUint(hex, 16, 64)
	if err != nil {
		return 0, false
	}
	return first, true
}

func encodeSegHeader(first uint64) []byte {
	hdr := make([]byte, 0, segHeaderLen)
	hdr = append(hdr, segMagic...)
	hdr = append(hdr, segVersion)
	hdr = binary.LittleEndian.AppendUint64(hdr, first)
	return binary.LittleEndian.AppendUint32(hdr, crc32.Checksum(hdr, castagnoli))
}

// decodeSegHeader validates a segment header and returns its first-seq.
func decodeSegHeader(b []byte) (uint64, error) {
	if len(b) < segHeaderLen {
		return 0, fmt.Errorf("%w: truncated segment header", ErrCorrupt)
	}
	if string(b[:4]) != segMagic {
		return 0, fmt.Errorf("%w: bad segment magic", ErrCorrupt)
	}
	want := binary.LittleEndian.Uint32(b[13:17])
	if got := crc32.Checksum(b[:13], castagnoli); got != want {
		return 0, fmt.Errorf("%w: segment header CRC mismatch", ErrCorrupt)
	}
	if v := b[4]; v != segVersion {
		return 0, fmt.Errorf("store: segment version %d not supported (max %d)", v, segVersion)
	}
	return binary.LittleEndian.Uint64(b[5:13]), nil
}

// OpenLog opens (or creates) the WAL in dir, running recovery: segments
// are scanned in sequence order, the first corrupt or torn record
// truncates the log at the last valid frame, and any segments past the
// corruption point are dropped. A log that lost its tail is still a valid
// log — exactly the prefix that was durable — which is the contract the
// ack path relies on.
func OpenLog(fsys FS, dir string, opts Options) (*DiskLog, error) {
	opts = opts.withDefaults()
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: create wal dir: %w", err)
	}
	names, err := fsys.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("store: list wal dir: %w", err)
	}
	var segs []segInfo
	for _, name := range names {
		if first, ok := parseSegName(name); ok {
			segs = append(segs, segInfo{name: name, first: first})
		}
	}
	// ReadDir sorts lexicographically; fixed-width hex makes that sequence
	// order, but sort defensively on the parsed value anyway.
	for i := 1; i < len(segs); i++ {
		for j := i; j > 0 && segs[j-1].first > segs[j].first; j-- {
			segs[j-1], segs[j] = segs[j], segs[j-1]
		}
	}

	l := &DiskLog{fsys: fsys, dir: dir, opts: opts, metrics: newStoreMetrics(opts.Obs)}
	if err := l.recover(segs); err != nil {
		return nil, err
	}
	if opts.Fsync == FsyncInterval {
		l.flushStop = make(chan struct{})
		l.flushDone = make(chan struct{})
		go l.flushLoop()
	}
	return l, nil
}

// recover scans segments in order, enforcing header validity, sequence
// continuity and per-record CRCs. The first violation truncates the log
// there: the offending segment is cut back to its valid prefix (removed
// entirely if nothing valid remains) and all later segments are dropped.
func (l *DiskLog) recover(segs []segInfo) error {
	lastSeq := uint64(0)
	mutated := false // any truncate/remove needs a directory fsync to stick
	for i := 0; i < len(segs); i++ {
		s := segs[i]
		path := filepath.Join(l.dir, s.name)
		data, err := l.fsys.ReadFile(path)
		if err != nil {
			return fmt.Errorf("store: read segment %s: %w", s.name, err)
		}
		valid := int64(0)
		segErr := func() error {
			first, err := decodeSegHeader(data)
			if err != nil {
				return err
			}
			if first != s.first {
				return fmt.Errorf("%w: segment %s header claims first seq %d", ErrCorrupt, s.name, first)
			}
			if i > 0 || lastSeq != 0 {
				if first != lastSeq+1 {
					return fmt.Errorf("%w: segment %s breaks sequence continuity (have %d, expect %d)", ErrCorrupt, s.name, first, lastSeq+1)
				}
			} else {
				// The oldest surviving segment defines where the log
				// starts (earlier ones were truncated away after
				// snapshots).
				lastSeq = first - 1
			}
			valid = segHeaderLen
			rest := data[segHeaderLen:]
			for len(rest) > 0 {
				rec, n, err := DecodeRecord(rest)
				if err != nil {
					return err
				}
				if rec.Seq != lastSeq+1 {
					return fmt.Errorf("%w: record seq %d breaks continuity (expect %d)", ErrCorrupt, rec.Seq, lastSeq+1)
				}
				lastSeq = rec.Seq
				valid += int64(n)
				rest = rest[n:]
			}
			return nil
		}()
		if segErr == nil && valid > segHeaderLen {
			continue
		}
		// Corruption, a torn tail, or an empty segment. Cut this segment
		// back to its valid prefix — or drop it entirely if no records
		// survive — and drop everything after it.
		if segErr != nil && !errors.Is(segErr, ErrCorrupt) {
			return segErr // unsupported version, IO error: surface, don't destroy
		}
		if valid > segHeaderLen {
			l.recovery.TruncatedBytes += int64(len(data)) - valid
			if err := l.fsys.Truncate(path, valid); err != nil {
				return fmt.Errorf("store: truncate torn segment %s: %w", s.name, err)
			}
			// The cut must be durable before any new appends: if it only
			// lives in the page cache and power is lost after fresh
			// records were acked, the tear resurfaces and the next
			// recovery truncates there — deleting the segments that held
			// the acked records.
			if l.opts.Fsync != FsyncNever {
				if err := l.fsys.SyncFile(path); err != nil {
					return fmt.Errorf("store: sync truncated segment %s: %w", s.name, err)
				}
			}
			mutated = true
			segs = segs[:i+1]
		} else {
			if err := l.fsys.Remove(path); err != nil {
				return fmt.Errorf("store: remove unusable segment %s: %w", s.name, err)
			}
			l.recovery.DroppedSegments++
			mutated = true
			segs = segs[:i]
		}
		// Everything after the truncation point is dropped below: with the
		// log ending here, later segments' records would open a sequence
		// gap.
		break
	}
	// Remove any segments past the retained prefix (they followed a
	// corruption point).
	keep := make(map[string]bool, len(segs))
	for _, s := range segs {
		keep[s.name] = true
	}
	all, err := l.fsys.ReadDir(l.dir)
	if err != nil {
		return fmt.Errorf("store: list wal dir: %w", err)
	}
	for _, name := range all {
		if _, ok := parseSegName(name); ok && !keep[name] {
			if err := l.fsys.Remove(filepath.Join(l.dir, name)); err != nil {
				return fmt.Errorf("store: remove orphaned segment %s: %w", name, err)
			}
			l.recovery.DroppedSegments++
			mutated = true
		}
	}
	if mutated && l.opts.Fsync != FsyncNever {
		if err := l.fsys.SyncDir(l.dir); err != nil {
			return fmt.Errorf("store: sync wal dir: %w", err)
		}
	}
	l.segments = segs
	l.lastSeq = lastSeq
	return nil
}

// Recovery reports what OpenLog repaired.
func (l *DiskLog) Recovery() RecoveryInfo { return l.recovery }

// Dir returns the directory the log lives in.
func (l *DiskLog) Dir() string { return l.dir }

// LastSeq returns the highest sequence number ever appended.
func (l *DiskLog) LastSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.lastSeq
}

// Append journals one batch; see Log.Append. A batch whose encoded
// payload would exceed maxRecordPayload — which DecodeRecord rejects as
// corrupt, so journaling it as one frame would turn the next recovery
// into silent truncation of acked data — is split across several
// records; the returned sequence number is the last one assigned, and
// durability (per the fsync policy) covers the whole batch.
func (l *DiskLog) Append(responses []Response) (uint64, error) {
	if len(responses) == 0 {
		return 0, fmt.Errorf("store: refusing to journal an empty batch")
	}
	if err := validateResponses(responses); err != nil {
		return 0, err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	switch {
	case l.closed:
		return 0, ErrClosed
	case l.failed:
		return 0, ErrLogFailed
	}
	var start time.Time
	if l.metrics != nil {
		start = l.metrics.clock.Now()
	}
	var appendedBytes, appendedRecords uint64
	seq := l.lastSeq
	for rest := toResponses(responses); len(rest) > 0; {
		chunk := rest
		if len(chunk) > maxBatchResponses {
			chunk = chunk[:maxBatchResponses]
		}
		rest = rest[len(chunk):]
		seq++
		frame := EncodeRecord(Record{Seq: seq, Responses: chunk})
		if err := l.ensureSegmentLocked(int64(len(frame))); err != nil {
			return 0, err
		}
		if _, err := l.seg.Write(frame); err != nil {
			// The frame may be half on disk; recovery will truncate it,
			// but appending more frames after a torn one would bury
			// valid-looking garbage mid-log.
			l.failed = true
			return 0, fmt.Errorf("store: append record %d: %w", seq, err)
		}
		l.segSize += int64(len(frame))
		l.dirty = true
		appendedBytes += uint64(len(frame))
		appendedRecords++
		// Advance per frame so a mid-batch rotation names the next
		// segment after the records already written.
		l.lastSeq = seq
	}
	if l.opts.Fsync == FsyncAlways {
		if err := l.timedSync(); err != nil {
			l.failed = true
			return 0, fmt.Errorf("store: sync record %d: %w", seq, err)
		}
		l.dirty = false
	}
	if m := l.metrics; m != nil {
		m.appendSec.Observe(m.clock.Since(start).Seconds())
		m.appendBytes.Add(appendedBytes)
		m.records.Add(appendedRecords)
	}
	return seq, nil
}

// toResponses is the identity — Append takes the exported type directly —
// kept as a seam should the journaled form ever diverge from the API form.
func toResponses(rs []Response) []Response { return rs }

// ensureSegmentLocked opens the active segment, rotating first when the
// incoming frame would push it past SegmentSize.
func (l *DiskLog) ensureSegmentLocked(incoming int64) error {
	if l.seg != nil && l.segSize > segHeaderLen && l.segSize+incoming > l.opts.SegmentSize {
		if err := l.closeSegmentLocked(); err != nil {
			l.failed = true
			return err
		}
	}
	if l.seg != nil {
		return nil
	}
	first := l.lastSeq + 1
	name := segName(first)
	path := filepath.Join(l.dir, name)
	f, err := l.fsys.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("store: create segment %s: %w", name, err)
	}
	// A failure past the O_EXCL create must not leave the partial file
	// behind: it is not tracked in l.segments, so every retry would hit
	// "file exists" — a wedged log with a misleading error. Removing it
	// lets a retry start clean; if even the remove fails, mark the log
	// failed so callers get the canonical reopen-to-recover signal.
	abandon := func(cause error) error {
		f.Close()
		if rerr := l.fsys.Remove(path); rerr != nil {
			l.failed = true
		}
		return cause
	}
	hdr := encodeSegHeader(first)
	if _, err := f.Write(hdr); err != nil {
		return abandon(fmt.Errorf("store: write segment header %s: %w", name, err))
	}
	if l.opts.Fsync != FsyncNever {
		if err := f.Sync(); err != nil {
			return abandon(fmt.Errorf("store: sync segment header %s: %w", name, err))
		}
		if err := l.fsys.SyncDir(l.dir); err != nil {
			return abandon(fmt.Errorf("store: sync wal dir: %w", err))
		}
	}
	l.seg = f
	l.segSize = int64(len(hdr))
	l.segments = append(l.segments, segInfo{name: name, first: first})
	if l.metrics != nil {
		l.metrics.segCreated.Inc()
	}
	return nil
}

// closeSegmentLocked syncs (under durable policies) and closes the active
// segment.
func (l *DiskLog) closeSegmentLocked() error {
	if l.seg == nil {
		return nil
	}
	if l.dirty && l.opts.Fsync != FsyncNever {
		if err := l.timedSync(); err != nil {
			l.seg.Close()
			l.seg = nil
			return fmt.Errorf("store: sync segment: %w", err)
		}
		l.dirty = false
	}
	err := l.seg.Close()
	l.seg = nil
	l.segSize = 0
	if err != nil {
		return fmt.Errorf("store: close segment: %w", err)
	}
	return nil
}

// Replay streams records with Seq >= from in order; see Log.Replay. It
// holds the log lock for the duration, so appends queue behind it.
func (l *DiskLog) Replay(from uint64, fn func(Record) error) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	expect := uint64(0)
	for _, s := range l.segments {
		data, err := l.fsys.ReadFile(filepath.Join(l.dir, s.name))
		if err != nil {
			return fmt.Errorf("store: read segment %s: %w", s.name, err)
		}
		first, err := decodeSegHeader(data)
		if err != nil || first != s.first {
			return fmt.Errorf("%w: segment %s header invalid on replay", ErrCorrupt, s.name)
		}
		rest := data[segHeaderLen:]
		for len(rest) > 0 {
			rec, n, err := DecodeRecord(rest)
			if err != nil {
				return fmt.Errorf("store: segment %s: %w", s.name, err)
			}
			if expect != 0 && rec.Seq != expect {
				return fmt.Errorf("%w: segment %s skips from seq %d to %d", ErrCorrupt, s.name, expect-1, rec.Seq)
			}
			expect = rec.Seq + 1
			rest = rest[n:]
			if rec.Seq < from {
				continue
			}
			if err := fn(rec); err != nil {
				return err
			}
		}
	}
	return nil
}

// TruncateBefore drops whole segments below seq; see Log.TruncateBefore.
// The newest segment is always retained even when fully below seq: its
// records carry the log's sequence position, so a crash after truncation
// still reopens with the counter intact (replay's filter makes the stale
// records harmless).
func (l *DiskLog) TruncateBefore(seq uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	cut := 0
	for cut < len(l.segments)-1 {
		// A segment's records end where the next segment starts.
		if l.segments[cut+1].first-1 >= seq {
			break
		}
		cut++
	}
	if cut == 0 {
		return nil
	}
	for _, s := range l.segments[:cut] {
		if err := l.fsys.Remove(filepath.Join(l.dir, s.name)); err != nil {
			return fmt.Errorf("store: remove segment %s: %w", s.name, err)
		}
	}
	l.segments = append([]segInfo(nil), l.segments[cut:]...)
	if l.opts.Fsync != FsyncNever {
		if err := l.fsys.SyncDir(l.dir); err != nil {
			return fmt.Errorf("store: sync wal dir: %w", err)
		}
	}
	if m := l.metrics; m != nil {
		m.truncations.Inc()
		m.segRemoved.Add(uint64(cut))
	}
	return nil
}

// AlignTo advances the log's sequence counter to seq when a restored
// snapshot has outrun the journal — possible only if corruption destroyed
// the tail that produced the snapshot. The surviving segments all lie
// below seq (the snapshot covers them), so they are removed; appending
// fresh records below the snapshot's sequence would make future replays
// silently skip them, which is the one thing a WAL must never do.
func (l *DiskLog) AlignTo(seq uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if seq <= l.lastSeq {
		return nil
	}
	if err := l.closeSegmentLocked(); err != nil {
		return err
	}
	for _, s := range l.segments {
		if err := l.fsys.Remove(filepath.Join(l.dir, s.name)); err != nil {
			return fmt.Errorf("store: remove segment %s: %w", s.name, err)
		}
	}
	if len(l.segments) > 0 && l.opts.Fsync != FsyncNever {
		if err := l.fsys.SyncDir(l.dir); err != nil {
			return fmt.Errorf("store: sync wal dir: %w", err)
		}
	}
	l.segments = nil
	l.lastSeq = seq
	return nil
}

// Sync forces buffered appends to stable storage.
func (l *DiskLog) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.syncLocked()
}

func (l *DiskLog) syncLocked() error {
	if l.closed {
		return ErrClosed
	}
	if l.seg == nil || !l.dirty {
		return nil
	}
	if err := l.timedSync(); err != nil {
		l.failed = true
		return fmt.Errorf("store: sync segment: %w", err)
	}
	l.dirty = false
	return nil
}

// flushLoop is the group-commit flusher under FsyncInterval.
func (l *DiskLog) flushLoop() {
	defer close(l.flushDone)
	t := time.NewTicker(l.opts.FsyncEvery)
	defer t.Stop()
	for {
		select {
		case <-l.flushStop:
			return
		case <-t.C:
			l.mu.Lock()
			if !l.closed {
				l.syncLocked() // a failed sync marks the log failed; Append surfaces it
			}
			l.mu.Unlock()
		}
	}
}

// Close syncs under durable policies and releases the log.
func (l *DiskLog) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	err := l.closeSegmentLocked()
	l.closed = true
	l.mu.Unlock()
	if l.flushStop != nil {
		close(l.flushStop)
		<-l.flushDone
	}
	return err
}
