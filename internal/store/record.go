package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"crowdassess/internal/crowd"
)

// WAL record framing. Every record on disk is one self-checking frame:
//
//	u32le payload length
//	u64le sequence number
//	u8    record type
//	payload (length bytes)
//	u32le CRC-32C over everything above
//
// The CRC is Castagnoli (hardware-accelerated on amd64/arm64) and covers
// the header too, so a bit flip in the length or sequence fields is caught
// the same as one in the payload. Sequence numbers are assigned
// contiguously by the log; replay filters on them, which is what makes
// re-applying an overlapping tail idempotent.
//
// The payload of a batch record is itself canonical: minimally-encoded
// uvarints only, so decode∘encode is the identity on every frame the
// decoder accepts — the property the fuzzers pin.

const (
	// recBatch frames one accepted ingest batch.
	recBatch = 0x01

	// recHeaderLen is the fixed frame header: length + seq + type.
	recHeaderLen = 4 + 8 + 1
	// recTrailerLen is the CRC.
	recTrailerLen = 4

	// maxRecordPayload bounds a single record so a corrupt length field
	// cannot demand a multi-gigabyte allocation. The bound is enforced on
	// both sides: DecodeRecord rejects larger frames as corrupt, and
	// Append splits batches so no frame it writes can exceed it.
	maxRecordPayload = 1 << 24

	// maxResponseEncoded is the worst-case encoded size of one response:
	// worker and task are uvarints ≤ maxInt31 (5 bytes each), the answer
	// is ≤ 255 (2 bytes).
	maxResponseEncoded = 5 + 5 + 2

	// maxBatchResponses is how many responses are guaranteed to fit one
	// record payload under maxRecordPayload, worst case, after the count
	// varint. Append chunks batches at this size.
	maxBatchResponses = (maxRecordPayload - binary.MaxVarintLen64) / maxResponseEncoded

	// maxUvarint53 caps decoded varints below 2^53, mirroring the wire
	// codec's safe-integer bound.
	maxUvarint53 = 1 << 53
)

// castagnoli is the CRC-32C table shared by records, segment headers and
// snapshot files.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrCorrupt reports a frame, segment or snapshot that fails validation.
// The WAL treats a corrupt record as the end of the usable log; the
// snapshot store skips corrupt files and falls back to older ones.
var ErrCorrupt = errors.New("store: corrupt data")

// Response is one crowd response as journaled: worker Worker answered task
// Task with Answer. It mirrors the evaluator's logged-response shape so
// replay can feed the ordinary Add path directly.
type Response struct {
	Worker int
	Task   int
	Answer crowd.Response
}

// Record is one decoded WAL record: the batch of responses journaled under
// sequence number Seq. Sequence numbers are contiguous per log, assigned
// at append time.
type Record struct {
	Seq       uint64
	Responses []Response
}

// appendUvarint appends v in minimal varint form.
func appendUvarint(b []byte, v uint64) []byte {
	return binary.AppendUvarint(b, v)
}

// uvarint decodes a minimally-encoded varint from b, rejecting overlong
// encodings and values at or above 2^53 so every accepted value re-encodes
// to the same bytes and converts to int without overflow.
func uvarint(b []byte) (uint64, int, error) {
	v, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, 0, fmt.Errorf("%w: truncated or overflowing varint", ErrCorrupt)
	}
	if n > 1 && b[n-1] == 0 {
		return 0, 0, fmt.Errorf("%w: overlong varint encoding", ErrCorrupt)
	}
	if v >= maxUvarint53 {
		return 0, 0, fmt.Errorf("%w: varint %d exceeds safe-integer bound", ErrCorrupt, v)
	}
	return v, n, nil
}

// encodeBatchPayload serializes a batch in canonical form: response count,
// then (worker, task, answer) uvarint triples.
func encodeBatchPayload(b []byte, responses []Response) []byte {
	b = appendUvarint(b, uint64(len(responses)))
	for _, r := range responses {
		b = appendUvarint(b, uint64(r.Worker))
		b = appendUvarint(b, uint64(r.Task))
		b = appendUvarint(b, uint64(r.Answer))
	}
	return b
}

// decodeBatchPayload parses a batch payload, requiring the canonical form
// exactly: no trailing bytes, no overlong varints, fields within range.
func decodeBatchPayload(b []byte) ([]Response, error) {
	count, n, err := uvarint(b)
	if err != nil {
		return nil, err
	}
	b = b[n:]
	// Each response is at least three bytes, so the count is bounded by the
	// remaining payload — checked before allocating.
	if count > uint64(len(b)) {
		return nil, fmt.Errorf("%w: batch claims %d responses in %d payload bytes", ErrCorrupt, count, len(b))
	}
	responses := make([]Response, count)
	for i := range responses {
		var fields [3]uint64
		for f := range fields {
			v, n, err := uvarint(b)
			if err != nil {
				return nil, err
			}
			fields[f], b = v, b[n:]
		}
		if fields[0] > maxInt31 || fields[1] > maxInt31 {
			return nil, fmt.Errorf("%w: worker/task index out of range", ErrCorrupt)
		}
		if fields[2] == 0 || fields[2] > 255 {
			return nil, fmt.Errorf("%w: answer %d out of range", ErrCorrupt, fields[2])
		}
		responses[i] = Response{Worker: int(fields[0]), Task: int(fields[1]), Answer: crowd.Response(fields[2])}
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes after batch payload", ErrCorrupt, len(b))
	}
	return responses, nil
}

// maxInt31 bounds worker and task indices to values that fit int on every
// platform and stay far from slice-length overflow.
const maxInt31 = 1<<31 - 1

// validateResponses rejects, before anything reaches disk, a batch the
// decoder would refuse to read back. Journaling an undecodable record
// would be worse than failing the append: recovery treats it as
// corruption and truncates the log there, silently dropping every acked
// record after it.
func validateResponses(rs []Response) error {
	for _, r := range rs {
		if r.Worker < 0 || int64(r.Worker) > maxInt31 {
			return fmt.Errorf("store: worker index %d out of journalable range", r.Worker)
		}
		if r.Task < 0 || int64(r.Task) > maxInt31 {
			return fmt.Errorf("store: task index %d out of journalable range", r.Task)
		}
		if r.Answer < 1 || r.Answer > 255 {
			return fmt.Errorf("store: answer %d out of journalable range", r.Answer)
		}
	}
	return nil
}

// appendRecord appends the framed record to b.
func appendRecord(b []byte, seq uint64, typ byte, payload []byte) []byte {
	start := len(b)
	var hdr [recHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint64(hdr[4:12], seq)
	hdr[12] = typ
	b = append(b, hdr[:]...)
	b = append(b, payload...)
	crc := crc32.Checksum(b[start:], castagnoli)
	var tail [recTrailerLen]byte
	binary.LittleEndian.PutUint32(tail[:], crc)
	return append(b, tail[:]...)
}

// EncodeRecord frames a batch record for the WAL.
func EncodeRecord(rec Record) []byte {
	payload := encodeBatchPayload(nil, rec.Responses)
	return appendRecord(nil, rec.Seq, recBatch, payload)
}

// DecodeRecord parses one frame from the front of b, returning the record
// and the number of bytes consumed. It never panics on arbitrary input,
// never allocates proportionally to a corrupt length field, and accepts
// only frames EncodeRecord could have produced — so re-encoding a decoded
// record reproduces the consumed bytes exactly.
func DecodeRecord(b []byte) (Record, int, error) {
	if len(b) < recHeaderLen+recTrailerLen {
		return Record{}, 0, fmt.Errorf("%w: truncated record header", ErrCorrupt)
	}
	payloadLen := int(binary.LittleEndian.Uint32(b[0:4]))
	if payloadLen > maxRecordPayload {
		return Record{}, 0, fmt.Errorf("%w: record payload %d exceeds %d-byte bound", ErrCorrupt, payloadLen, maxRecordPayload)
	}
	total := recHeaderLen + payloadLen + recTrailerLen
	if len(b) < total {
		return Record{}, 0, fmt.Errorf("%w: truncated record body", ErrCorrupt)
	}
	want := binary.LittleEndian.Uint32(b[total-recTrailerLen : total])
	if got := crc32.Checksum(b[:total-recTrailerLen], castagnoli); got != want {
		return Record{}, 0, fmt.Errorf("%w: record CRC mismatch", ErrCorrupt)
	}
	seq := binary.LittleEndian.Uint64(b[4:12])
	if typ := b[12]; typ != recBatch {
		return Record{}, 0, fmt.Errorf("%w: unknown record type 0x%02x", ErrCorrupt, typ)
	}
	responses, err := decodeBatchPayload(b[recHeaderLen : recHeaderLen+payloadLen])
	if err != nil {
		return Record{}, 0, err
	}
	return Record{Seq: seq, Responses: responses}, total, nil
}
