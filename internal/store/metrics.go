package store

import (
	"crowdassess/internal/obs"
)

// storeMetrics pre-resolves the engine's metric series at open time so
// the append hot path never takes a registry lookup — one nil check and
// atomic adds. A nil *storeMetrics disables instrumentation entirely.
//
// Timing runs on the registry's injected clock: the engine itself makes
// no scheduling or durability decision from these readings (crowdvet's
// determinism exemption for this package is scoped to exactly that —
// clocks pace measurement and group-commit, never replayed state).
type storeMetrics struct {
	clock       obs.Clock
	appendSec   *obs.Histogram
	fsyncSec    *obs.Histogram
	snapSaveSec *obs.Histogram
	appendBytes *obs.Counter
	records     *obs.Counter
	segCreated  *obs.Counter
	segRemoved  *obs.Counter
	truncations *obs.Counter
	snapSaved   *obs.Counter
	snapPruned  *obs.Counter
}

func newStoreMetrics(reg *obs.Registry) *storeMetrics {
	if reg == nil {
		return nil
	}
	return &storeMetrics{
		clock: reg.Clock(),
		appendSec: reg.Histogram("store_append_seconds",
			"WAL append latency (encode, write, and fsync under FsyncAlways).", nil),
		fsyncSec: reg.Histogram("store_fsync_seconds",
			"WAL segment fsync latency (per-append, group-commit and rotation syncs).", nil),
		snapSaveSec: reg.Histogram("store_snapshot_save_seconds",
			"Snapshot save latency (atomic write, prune, directory sync).", nil),
		appendBytes: reg.Counter("store_append_bytes_total",
			"Encoded record bytes appended to the WAL."),
		records: reg.Counter("store_records_total",
			"Records appended to the WAL."),
		segCreated: reg.Counter("store_segments_created_total",
			"WAL segment files created."),
		segRemoved: reg.Counter("store_segments_removed_total",
			"WAL segment files removed by truncation."),
		truncations: reg.Counter("store_truncations_total",
			"TruncateBefore calls that removed at least one segment."),
		snapSaved: reg.Counter("store_snapshots_saved_total",
			"Snapshots durably saved."),
		snapPruned: reg.Counter("store_snapshots_pruned_total",
			"Old snapshot generations pruned."),
	}
}

// timedSync syncs the active segment, recording the fsync latency when
// the log is instrumented. Caller holds l.mu.
func (l *DiskLog) timedSync() error {
	m := l.metrics
	if m == nil {
		return l.seg.Sync()
	}
	start := m.clock.Now()
	err := l.seg.Sync()
	m.fsyncSec.Observe(m.clock.Since(start).Seconds())
	return err
}
