package store

import (
	"bytes"
	"errors"
	"testing"

	"crowdassess/internal/crowd"
)

func sampleRecord(seq uint64) Record {
	return Record{Seq: seq, Responses: []Response{
		{Worker: 0, Task: 0, Answer: crowd.Yes},
		{Worker: 3, Task: 129, Answer: crowd.No},
		{Worker: 1 << 18, Task: 1 << 20, Answer: crowd.Yes},
	}}
}

func TestRecordRoundTrip(t *testing.T) {
	for _, rec := range []Record{
		{Seq: 1, Responses: []Response{{Worker: 0, Task: 0, Answer: crowd.Yes}}},
		sampleRecord(7),
		sampleRecord(1<<40 + 3),
	} {
		frame := EncodeRecord(rec)
		got, n, err := DecodeRecord(frame)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if n != len(frame) {
			t.Fatalf("decode consumed %d of %d bytes", n, len(frame))
		}
		if got.Seq != rec.Seq || len(got.Responses) != len(rec.Responses) {
			t.Fatalf("round trip mismatch: %+v vs %+v", got, rec)
		}
		for i, r := range got.Responses {
			if r != rec.Responses[i] {
				t.Fatalf("response %d: got %+v want %+v", i, r, rec.Responses[i])
			}
		}
		if re := EncodeRecord(got); !bytes.Equal(re, frame) {
			t.Fatalf("re-encode is not byte-canonical")
		}
	}
}

func TestRecordDecodeConsumesPrefix(t *testing.T) {
	// A frame followed by arbitrary bytes decodes to exactly the frame.
	frame := EncodeRecord(sampleRecord(5))
	buf := append(append([]byte(nil), frame...), 0xde, 0xad, 0xbe)
	_, n, err := DecodeRecord(buf)
	if err != nil || n != len(frame) {
		t.Fatalf("prefix decode: n=%d err=%v, want n=%d", n, err, len(frame))
	}
}

// TestRecordEveryByteCorruption flips every bit-pattern-visible byte of a
// valid frame and requires the decoder to reject each mutation: the CRC
// covers the header too, so no single-byte flip may survive.
func TestRecordEveryByteCorruption(t *testing.T) {
	frame := EncodeRecord(sampleRecord(42))
	for i := range frame {
		for _, delta := range []byte{0x01, 0x80, 0xff} {
			mut := append([]byte(nil), frame...)
			mut[i] ^= delta
			if rec, _, err := DecodeRecord(mut); err == nil {
				t.Fatalf("byte %d ^ %#x accepted: %+v", i, delta, rec)
			}
		}
	}
}

func TestRecordEveryTruncation(t *testing.T) {
	frame := EncodeRecord(sampleRecord(42))
	for n := 0; n < len(frame); n++ {
		if rec, _, err := DecodeRecord(frame[:n]); err == nil {
			t.Fatalf("truncation to %d bytes accepted: %+v", n, rec)
		} else if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("truncation to %d bytes: error %v is not ErrCorrupt", n, err)
		}
	}
}

func TestRecordRejectsOverlongVarint(t *testing.T) {
	// Hand-build a payload with an overlong (non-minimal) count varint:
	// 0x81 0x00 encodes 1 in two bytes. The frame CRC is valid, so only
	// the canonicality check can reject it.
	payload := []byte{0x81, 0x00, 0x00, 0x00, 0x01}
	frame := appendRecord(nil, 1, recBatch, payload)
	if _, _, err := DecodeRecord(frame); err == nil {
		t.Fatal("overlong varint accepted")
	}
}

func TestRecordRejectsBadAnswerAndRanges(t *testing.T) {
	cases := []struct {
		name    string
		payload []byte
	}{
		{"answer zero", encodeBatchPayload(nil, []Response{{Worker: 1, Task: 1, Answer: 0}})},
		{"answer overflow", encodeBatchPayload(nil, []Response{{Worker: 1, Task: 1, Answer: 300}})},
		{"trailing bytes", append(encodeBatchPayload(nil, []Response{{Worker: 1, Task: 1, Answer: crowd.Yes}}), 0x00)},
		{"count overruns payload", []byte{0x05}},
	}
	for _, tc := range cases {
		frame := appendRecord(nil, 1, recBatch, tc.payload)
		if _, _, err := DecodeRecord(frame); err == nil {
			t.Fatalf("%s: accepted", tc.name)
		}
	}
}

func TestSnapshotFileRoundTrip(t *testing.T) {
	payload := []byte("opaque compact state payload")
	b := EncodeSnapshotFile(99, payload)
	snap, err := DecodeSnapshotFile(b)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if snap.Seq != 99 || !bytes.Equal(snap.Payload, payload) {
		t.Fatalf("round trip mismatch: %+v", snap)
	}
}

func TestSnapshotFileEveryByteCorruption(t *testing.T) {
	b := EncodeSnapshotFile(7, []byte{1, 2, 3, 4, 5})
	for i := range b {
		mut := append([]byte(nil), b...)
		mut[i] ^= 0x40
		if snap, err := DecodeSnapshotFile(mut); err == nil {
			t.Fatalf("byte %d corruption accepted: %+v", i, snap)
		}
	}
	for n := 0; n < len(b); n++ {
		if _, err := DecodeSnapshotFile(b[:n]); err == nil {
			t.Fatalf("truncation to %d accepted", n)
		}
	}
}

// FuzzDecodeWALRecord pins the decoder's two contracts on arbitrary bytes:
// it never panics, and any frame it accepts re-encodes to exactly the
// bytes it consumed (byte-canonical round trip).
func FuzzDecodeWALRecord(f *testing.F) {
	f.Add(EncodeRecord(sampleRecord(1)))
	f.Add(EncodeRecord(Record{Seq: 1 << 50, Responses: []Response{{Worker: 0, Task: 0, Answer: 255}}}))
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		rec, n, err := DecodeRecord(data)
		if err != nil {
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		if re := EncodeRecord(rec); !bytes.Equal(re, data[:n]) {
			t.Fatalf("accepted frame does not re-encode canonically")
		}
	})
}

// FuzzReadSegment feeds arbitrary bytes through the same header+record
// scan recovery runs, asserting it never panics and that a fully valid
// segment re-encodes byte-identically.
func FuzzReadSegment(f *testing.F) {
	seg := encodeSegHeader(1)
	seg = append(seg, EncodeRecord(Record{Seq: 1, Responses: []Response{{Worker: 0, Task: 3, Answer: crowd.Yes}}})...)
	seg = append(seg, EncodeRecord(Record{Seq: 2, Responses: []Response{{Worker: 2, Task: 3, Answer: crowd.No}}})...)
	f.Add(seg)
	f.Add(encodeSegHeader(1 << 33))
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0x00}, 48))
	f.Fuzz(func(t *testing.T, data []byte) {
		first, err := decodeSegHeader(data)
		if err != nil {
			return
		}
		re := encodeSegHeader(first)
		rest := data[segHeaderLen:]
		seq := first - 1
		for len(rest) > 0 {
			rec, n, err := DecodeRecord(rest)
			if err != nil || rec.Seq != seq+1 {
				return
			}
			seq = rec.Seq
			re = append(re, EncodeRecord(rec)...)
			rest = rest[n:]
		}
		if !bytes.Equal(re, data) {
			t.Fatalf("valid segment does not re-encode canonically")
		}
	})
}
