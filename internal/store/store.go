// Package store is the durable storage engine under the streaming
// evaluators: a segmented append-only write-ahead log of accepted ingest
// batches plus a store of compacted state snapshots, composed so that
// recovery is always "restore the newest valid snapshot, replay the WAL
// tail".
//
// Every on-disk structure is CRC-32C framed and versioned. The WAL
// truncates at the first corrupt or torn record — the surviving prefix is
// exactly what was durable — and the snapshot store skips files that fail
// validation rather than trusting them. Records carry contiguous sequence
// numbers assigned at append time; replay filters on them, so re-applying
// a tail that overlaps the restored snapshot is idempotent by
// construction.
//
// The engine is written against the FS seam so tests can inject torn
// writes, ENOSPC and crash-at-offset faults (FaultFS), and so non-POSIX
// backends (object stores, SQL blobs) can implement Log and SnapshotStore
// without this package changing.
package store

import (
	"fmt"
)

// Store composes the WAL and the snapshot store over one directory:
// segments and snapshots live side by side, distinguished by filename.
type Store struct {
	Log       *DiskLog
	Snapshots *DiskSnapshots
}

// Open opens (or creates) the storage engine in dir, running WAL recovery.
func Open(fsys FS, dir string, opts Options) (*Store, error) {
	log, err := OpenLog(fsys, dir, opts)
	if err != nil {
		return nil, err
	}
	snaps, err := OpenSnapshots(fsys, dir, opts)
	if err != nil {
		log.Close()
		return nil, err
	}
	return &Store{Log: log, Snapshots: snaps}, nil
}

// FirstSeq returns the sequence number of the oldest record still in the
// log (0 if the log holds none).
func (l *DiskLog) FirstSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.segments) == 0 {
		return 0
	}
	first := l.segments[0].first
	if first > l.lastSeq {
		return 0
	}
	return first
}

// Recover rebuilds state from disk: the newest valid snapshot (if any) is
// handed to restore, then every WAL record past the snapshot's sequence
// number is handed to apply, in order. It fails — rather than silently
// serving partial state — when the log has been compacted past the point
// any surviving snapshot covers, which can only happen if every newer
// snapshot was corrupt.
func (s *Store) Recover(restore func(Snapshot) error, apply func(Record) error) error {
	snap, ok, snapErr := s.Snapshots.Latest()
	replayFrom := uint64(1)
	if ok {
		if err := restore(snap); err != nil {
			return fmt.Errorf("store: restore snapshot at seq %d: %w", snap.Seq, err)
		}
		replayFrom = snap.Seq + 1
		// A snapshot newer than the whole journal means the tail that
		// produced it was itself lost to corruption; realign so fresh
		// appends cannot hide below the snapshot's sequence.
		if snap.Seq > s.Log.LastSeq() {
			if err := s.Log.AlignTo(snap.Seq); err != nil {
				return err
			}
		}
	}
	first := s.Log.FirstSeq()
	if !ok && snapErr != nil && first != 1 {
		// Snapshots existed but every one was corrupt, and the log no
		// longer holds the full history they covered.
		return fmt.Errorf("store: no usable snapshot: %w", snapErr)
	}
	if first > replayFrom {
		return fmt.Errorf("%w: log starts at seq %d but recovery needs seq %d — the covering snapshot was lost", ErrCorrupt, first, replayFrom)
	}
	return s.Log.Replay(replayFrom, apply)
}

// Empty reports whether the store holds no durable state at all: no
// journal record was ever appended and no usable snapshot exists. An
// empty store is one that was attached but never saw a fan-out; recovery
// from it yields empty state, so callers with an older seed source (a
// legacy checkpoint, say) should prefer that instead. An error means the
// snapshot store could not be listed — the store's emptiness is unknown,
// and callers must not treat it as absent state.
func (s *Store) Empty() (bool, error) {
	if s.Log.LastSeq() > 0 {
		return false, nil
	}
	_, ok, err := s.Snapshots.Latest()
	if err != nil {
		return false, err
	}
	return !ok, nil
}

// Close releases the engine.
func (s *Store) Close() error {
	return s.Log.Close()
}
