package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
)

// SnapshotStore persists compacted state snapshots, each tagged with the
// WAL sequence number it covers. The payload is opaque to the store — the
// distributed layer writes its canonical compact-state encoding — which
// keeps this package free of any dependency on what is being snapshotted
// and leaves the interface implementable by object stores or SQL blobs.
type SnapshotStore interface {
	// Save durably writes a snapshot covering the log through seq,
	// then prunes generations beyond Options.KeepSnapshots.
	Save(seq uint64, payload []byte) error
	// Latest returns the newest snapshot that passes validation, skipping
	// corrupt files (a snapshot with a bad CRC is refused, not trusted).
	// ok is false when no valid snapshot exists; err is non-nil only when
	// candidates existed but none could be read back cleanly.
	Latest() (snap Snapshot, ok bool, err error)
}

// Snapshot is one stored snapshot: the opaque payload plus the WAL
// sequence number it covers — recovery restores the payload and replays
// the log from Seq+1.
type Snapshot struct {
	Seq     uint64
	Payload []byte
}

// Snapshot files: snap-<seq as %016x>.snap —
//
//	"CASN" magic, u8 version, u64le seq, u32le payload length, payload,
//	u32le CRC-32C over everything above.
//
// Files are written atomically (temp + fsync + rename + parent-dir fsync),
// so a crash mid-save leaves the previous generation untouched.
const (
	snapMagic     = "CASN"
	snapVersion   = 1
	snapHeaderLen = 4 + 1 + 8 + 4
	snapPrefix    = "snap-"
	snapSuffix    = ".snap"

	// maxSnapshotPayload bounds what a corrupt length field can demand;
	// matches the transport's snapshot frame class.
	maxSnapshotPayload = 1 << 30
)

// EncodeSnapshotFile frames a snapshot payload for disk.
func EncodeSnapshotFile(seq uint64, payload []byte) []byte {
	b := make([]byte, 0, snapHeaderLen+len(payload)+4)
	b = append(b, snapMagic...)
	b = append(b, snapVersion)
	b = binary.LittleEndian.AppendUint64(b, seq)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(payload)))
	b = append(b, payload...)
	return binary.LittleEndian.AppendUint32(b, crc32.Checksum(b, castagnoli))
}

// DecodeSnapshotFile validates a snapshot file and returns its contents.
// It never panics on arbitrary input; any deviation — bad magic, wrong
// length, CRC mismatch, trailing bytes — is ErrCorrupt.
func DecodeSnapshotFile(b []byte) (Snapshot, error) {
	if len(b) < snapHeaderLen+4 {
		return Snapshot{}, fmt.Errorf("%w: truncated snapshot file", ErrCorrupt)
	}
	if string(b[:4]) != snapMagic {
		return Snapshot{}, fmt.Errorf("%w: bad snapshot magic", ErrCorrupt)
	}
	payloadLen := int(binary.LittleEndian.Uint32(b[13:17]))
	if payloadLen > maxSnapshotPayload {
		return Snapshot{}, fmt.Errorf("%w: snapshot payload %d exceeds bound", ErrCorrupt, payloadLen)
	}
	total := snapHeaderLen + payloadLen + 4
	if len(b) != total {
		return Snapshot{}, fmt.Errorf("%w: snapshot file is %d bytes, header implies %d", ErrCorrupt, len(b), total)
	}
	want := binary.LittleEndian.Uint32(b[total-4:])
	if got := crc32.Checksum(b[:total-4], castagnoli); got != want {
		return Snapshot{}, fmt.Errorf("%w: snapshot CRC mismatch", ErrCorrupt)
	}
	if v := b[4]; v != snapVersion {
		return Snapshot{}, fmt.Errorf("store: snapshot version %d not supported (max %d)", v, snapVersion)
	}
	return Snapshot{
		Seq:     binary.LittleEndian.Uint64(b[5:13]),
		Payload: append([]byte(nil), b[snapHeaderLen:total-4]...),
	}, nil
}

// DiskSnapshots is the local-disk SnapshotStore. Safe for concurrent use.
type DiskSnapshots struct {
	fsys    FS
	dir     string
	keep    int
	metrics *storeMetrics // nil when Options.Obs is unset

	mu sync.Mutex
}

// OpenSnapshots opens (or creates) the snapshot directory.
func OpenSnapshots(fsys FS, dir string, opts Options) (*DiskSnapshots, error) {
	opts = opts.withDefaults()
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: create snapshot dir: %w", err)
	}
	return &DiskSnapshots{fsys: fsys, dir: dir, keep: opts.KeepSnapshots, metrics: newStoreMetrics(opts.Obs)}, nil
}

func snapName(seq uint64) string {
	return snapPrefix + fmt.Sprintf("%016x", seq) + snapSuffix
}

func parseSnapName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, snapPrefix) || !strings.HasSuffix(name, snapSuffix) {
		return 0, false
	}
	hex := name[len(snapPrefix) : len(name)-len(snapSuffix)]
	if hex == "" {
		return 0, false
	}
	seq, err := strconv.ParseUint(hex, 16, 64)
	if err != nil {
		return 0, false
	}
	return seq, true
}

// Save durably writes the snapshot, then prunes old generations; see
// SnapshotStore.Save.
func (s *DiskSnapshots) Save(seq uint64, payload []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if m := s.metrics; m != nil {
		start := m.clock.Now()
		defer func() {
			m.snapSaveSec.Observe(m.clock.Since(start).Seconds())
			m.snapSaved.Inc()
		}()
	}
	path := filepath.Join(s.dir, snapName(seq))
	if err := WriteFileAtomic(s.fsys, path, EncodeSnapshotFile(seq, payload), 0o644); err != nil {
		return err
	}
	// Prune beyond the retention bound, oldest first. Failures here are
	// non-fatal — the new snapshot is already durable — but surfaced so
	// operators notice a directory that only grows.
	names, err := s.fsys.ReadDir(s.dir)
	if err != nil {
		return fmt.Errorf("store: list snapshot dir: %w", err)
	}
	var seqs []uint64
	for _, name := range names {
		if sq, ok := parseSnapName(name); ok {
			seqs = append(seqs, sq)
		}
	}
	if len(seqs) <= s.keep {
		return nil
	}
	// ReadDir's lexicographic order is sequence order for fixed-width hex.
	for _, sq := range seqs[:len(seqs)-s.keep] {
		if err := s.fsys.Remove(filepath.Join(s.dir, snapName(sq))); err != nil {
			return fmt.Errorf("store: prune snapshot %d: %w", sq, err)
		}
		if s.metrics != nil {
			s.metrics.snapPruned.Inc()
		}
	}
	return s.fsys.SyncDir(s.dir)
}

// Latest returns the newest valid snapshot, skipping corrupt files; see
// SnapshotStore.Latest.
func (s *DiskSnapshots) Latest() (Snapshot, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	names, err := s.fsys.ReadDir(s.dir)
	if err != nil {
		return Snapshot{}, false, fmt.Errorf("store: list snapshot dir: %w", err)
	}
	var candidates []string
	for _, name := range names {
		if _, ok := parseSnapName(name); ok {
			candidates = append(candidates, name)
		}
	}
	var firstErr error
	for i := len(candidates) - 1; i >= 0; i-- {
		data, err := s.fsys.ReadFile(filepath.Join(s.dir, candidates[i]))
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		snap, err := DecodeSnapshotFile(data)
		if err != nil {
			// Corrupt or torn: refuse it and fall back to the previous
			// generation rather than trusting a bad CRC.
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		return snap, true, nil
	}
	if len(candidates) == 0 {
		return Snapshot{}, false, nil
	}
	return Snapshot{}, false, firstErr
}
