// Package stat provides the statistical substrate for the crowd-assessment
// algorithms: the normal distribution (PDF/CDF/quantile), descriptive
// moments, Bernoulli/binomial helpers, confidence-interval types, and the
// Wilson score interval used by the conservative baseline.
package stat

import "math"

// Normal is a normal (Gaussian) distribution with mean Mu and standard
// deviation Sigma. The zero value is not usable; use StdNormal or construct
// with a positive Sigma.
type Normal struct {
	Mu    float64
	Sigma float64
}

// StdNormal is the standard normal distribution N(0, 1).
var StdNormal = Normal{Mu: 0, Sigma: 1}

// PDF returns the probability density at x.
func (n Normal) PDF(x float64) float64 {
	z := (x - n.Mu) / n.Sigma
	return math.Exp(-z*z/2) / (n.Sigma * math.Sqrt(2*math.Pi))
}

// CDF returns P(X ≤ x).
func (n Normal) CDF(x float64) float64 {
	z := (x - n.Mu) / (n.Sigma * math.Sqrt2)
	return 0.5 * (1 + math.Erf(z))
}

// Quantile returns the value x with CDF(x) = p, i.e. the inverse CDF.
// It returns ±Inf for p = 0 or 1 and NaN outside [0, 1].
func (n Normal) Quantile(p float64) float64 {
	switch {
	case p < 0 || p > 1:
		return math.NaN()
	case p == 0:
		return math.Inf(-1)
	case p == 1:
		return math.Inf(1)
	}
	return n.Mu + n.Sigma*math.Sqrt2*math.Erfinv(2*p-1)
}

// ZScore returns z_t, the t-th quantile of the standard normal distribution.
// Theorem 1 of the paper uses z with t = (1+c)/2 for a c-confidence interval.
func ZScore(t float64) float64 {
	return StdNormal.Quantile(t)
}

// ConfidenceZ returns the half-width multiplier for a two-sided c-confidence
// interval around a normal estimate: z_{(1+c)/2}.
func ConfidenceZ(c float64) float64 {
	return ZScore((1 + c) / 2)
}
