package stat

import (
	"math"
	"testing"
	"testing/quick"
)

func TestIncompleteBetaKnownValues(t *testing.T) {
	cases := []struct{ a, b, x, want float64 }{
		// I_x(1, 1) = x (uniform distribution CDF).
		{1, 1, 0.3, 0.3},
		{1, 1, 0.77, 0.77},
		// I_x(1, b) = 1 − (1−x)^b.
		{1, 2, 0.5, 0.75},
		{1, 3, 0.2, 1 - math.Pow(0.8, 3)},
		// I_x(a, 1) = x^a.
		{2, 1, 0.5, 0.25},
		{3, 1, 0.9, math.Pow(0.9, 3)},
		// Symmetric case: I_{1/2}(a, a) = 1/2.
		{5, 5, 0.5, 0.5},
		{0.5, 0.5, 0.5, 0.5},
		// Binomial tail: P(X ≤ 2) for Bin(5, 0.3) = I_{0.7}(3, 3).
		{3, 3, 0.7, 0.83692},
	}
	for _, c := range cases {
		got := RegularizedIncompleteBeta(c.a, c.b, c.x)
		if math.Abs(got-c.want) > 1e-4 {
			t.Errorf("I_%v(%v,%v) = %v, want %v", c.x, c.a, c.b, got, c.want)
		}
	}
}

func TestIncompleteBetaEdges(t *testing.T) {
	if got := RegularizedIncompleteBeta(2, 3, 0); got != 0 {
		t.Errorf("I_0 = %v", got)
	}
	if got := RegularizedIncompleteBeta(2, 3, 1); got != 1 {
		t.Errorf("I_1 = %v", got)
	}
	for _, bad := range [][3]float64{{-1, 1, 0.5}, {1, 0, 0.5}, {1, 1, -0.1}, {1, 1, 1.1}} {
		if got := RegularizedIncompleteBeta(bad[0], bad[1], bad[2]); !math.IsNaN(got) {
			t.Errorf("I with %v = %v, want NaN", bad, got)
		}
	}
}

// Property: I_x(a,b) is a CDF in x — monotone from 0 to 1.
func TestIncompleteBetaMonotone(t *testing.T) {
	f := func(a8, b8 uint8) bool {
		a := 0.5 + 5*float64(a8)/255
		b := 0.5 + 5*float64(b8)/255
		prev := 0.0
		for x := 0.05; x < 1; x += 0.05 {
			v := RegularizedIncompleteBeta(a, b, x)
			if v < prev-1e-12 || v < 0 || v > 1 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: BetaQuantile inverts the CDF.
func TestBetaQuantileRoundTrip(t *testing.T) {
	for _, ab := range [][2]float64{{1, 1}, {2, 5}, {0.5, 0.5}, {10, 3}} {
		for p := 0.05; p < 1; p += 0.1 {
			x := BetaQuantile(ab[0], ab[1], p)
			back := RegularizedIncompleteBeta(ab[0], ab[1], x)
			if math.Abs(back-p) > 1e-9 {
				t.Errorf("a=%v b=%v: CDF(Quantile(%v)) = %v", ab[0], ab[1], p, back)
			}
		}
	}
	if !math.IsNaN(BetaQuantile(0, 1, 0.5)) {
		t.Error("invalid a accepted")
	}
	if BetaQuantile(2, 2, 0) != 0 || BetaQuantile(2, 2, 1) != 1 {
		t.Error("edge quantiles wrong")
	}
}

func TestClopperPearsonKnownValues(t *testing.T) {
	// Classical reference: k=5, n=10, 95% → [0.187, 0.813].
	iv := ClopperPearson(5, 10, 0.95)
	if math.Abs(iv.Lo-0.1871) > 5e-3 || math.Abs(iv.Hi-0.8129) > 5e-3 {
		t.Errorf("CP(5,10) = %v", iv)
	}
	// k=0: lower bound exactly 0; upper = 1 − (α/2)^{1/n}.
	iv = ClopperPearson(0, 20, 0.95)
	if iv.Lo != 0 {
		t.Errorf("CP(0,20).Lo = %v", iv.Lo)
	}
	wantHi := 1 - math.Pow(0.025, 1.0/20)
	if math.Abs(iv.Hi-wantHi) > 1e-6 {
		t.Errorf("CP(0,20).Hi = %v, want %v", iv.Hi, wantHi)
	}
	// Symmetry: CP(k,n) mirrors CP(n−k,n).
	a := ClopperPearson(3, 12, 0.9)
	b := ClopperPearson(9, 12, 0.9)
	if math.Abs(a.Lo-(1-b.Hi)) > 1e-9 || math.Abs(a.Hi-(1-b.Lo)) > 1e-9 {
		t.Errorf("CP not symmetric: %v vs %v", a, b)
	}
}

func TestClopperPearsonDegenerate(t *testing.T) {
	iv := ClopperPearson(0, 0, 0.9)
	if iv.Lo != 0 || iv.Hi != 1 {
		t.Errorf("CP with n=0 = %v", iv)
	}
}

// Property: Clopper–Pearson contains the point estimate and is at least as
// wide as Wilson (exactness costs width).
func TestClopperPearsonVsWilson(t *testing.T) {
	f := func(k8 uint8, c8 uint8) bool {
		n := 40
		k := int(k8) % (n + 1)
		c := 0.5 + 0.45*float64(c8)/255
		cp := ClopperPearson(k, n, c)
		wl := Wilson(k, n, c)
		p := float64(k) / float64(n)
		if p < cp.Lo-1e-9 || p > cp.Hi+1e-9 {
			return false
		}
		return cp.Size() >= wl.Size()-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
