package stat

import (
	"fmt"
	"math"
)

// Interval is a closed confidence interval [Lo, Hi] for a scalar estimate,
// together with the point estimate it was built around and the confidence
// level requested. Mean need not be the midpoint after clamping.
type Interval struct {
	Mean       float64 // point estimate (center before clamping)
	Lo, Hi     float64 // interval endpoints, Lo ≤ Hi
	Confidence float64 // requested confidence level c ∈ (0,1)
}

// NewInterval builds a symmetric interval mean ± halfWidth at confidence c.
func NewInterval(mean, halfWidth, c float64) Interval {
	if halfWidth < 0 {
		halfWidth = -halfWidth
	}
	return Interval{Mean: mean, Lo: mean - halfWidth, Hi: mean + halfWidth, Confidence: c}
}

// Size returns the width Hi − Lo of the interval.
func (iv Interval) Size() float64 { return iv.Hi - iv.Lo }

// Contains reports whether x lies within [Lo, Hi].
func (iv Interval) Contains(x float64) bool { return x >= iv.Lo && x <= iv.Hi }

// ClampTo restricts the interval to [lo, hi] (probabilities live in [0, 1],
// error rates of non-malicious workers in [0, ½)). The mean is clamped too.
func (iv Interval) ClampTo(lo, hi float64) Interval {
	out := iv
	out.Lo = math.Max(lo, math.Min(hi, out.Lo))
	out.Hi = math.Max(lo, math.Min(hi, out.Hi))
	out.Mean = math.Max(lo, math.Min(hi, out.Mean))
	return out
}

// IsValid reports whether the interval endpoints are finite and ordered.
func (iv Interval) IsValid() bool {
	return !math.IsNaN(iv.Lo) && !math.IsNaN(iv.Hi) &&
		!math.IsInf(iv.Lo, 0) && !math.IsInf(iv.Hi, 0) && iv.Lo <= iv.Hi
}

// String renders the interval as "mean [lo, hi] @c".
func (iv Interval) String() string {
	return fmt.Sprintf("%.4f [%.4f, %.4f] @%.2f", iv.Mean, iv.Lo, iv.Hi, iv.Confidence)
}

// Wilson returns the Wilson score interval for a binomial proportion with
// successes k out of n trials at confidence c. The conservative baseline
// uses it for agreement-rate bounds; unlike the Wald interval it behaves
// sensibly near 0 and 1 and for small n.
func Wilson(k, n int, c float64) Interval {
	if n <= 0 {
		return Interval{Mean: 0.5, Lo: 0, Hi: 1, Confidence: c}
	}
	z := ConfidenceZ(c)
	p := float64(k) / float64(n)
	nf := float64(n)
	denom := 1 + z*z/nf
	center := (p + z*z/(2*nf)) / denom
	half := z / denom * math.Sqrt(p*(1-p)/nf+z*z/(4*nf*nf))
	iv := Interval{Mean: p, Lo: center - half, Hi: center + half, Confidence: c}
	return iv.ClampTo(0, 1)
}

// Wald returns the plain normal-approximation interval p̂ ± z·√(p̂(1−p̂)/n)
// for a binomial proportion, clamped to [0, 1].
func Wald(k, n int, c float64) Interval {
	if n <= 0 {
		return Interval{Mean: 0.5, Lo: 0, Hi: 1, Confidence: c}
	}
	p := float64(k) / float64(n)
	half := ConfidenceZ(c) * math.Sqrt(p*(1-p)/float64(n))
	return NewInterval(p, half, c).ClampTo(0, 1)
}
