package stat

import "math"

// RegularizedIncompleteBeta computes I_x(a, b), the regularized incomplete
// beta function, via the standard continued-fraction expansion (Lentz's
// method). Domain: a, b > 0 and x ∈ [0, 1]; NaN outside.
//
// It underpins the exact binomial (Clopper–Pearson) intervals used by the
// gold-standard evaluator: the classical technique the paper's introduction
// positions its method against.
func RegularizedIncompleteBeta(a, b, x float64) float64 {
	switch {
	case a <= 0 || b <= 0 || x < 0 || x > 1 || math.IsNaN(x):
		return math.NaN()
	case x == 0:
		return 0
	case x == 1:
		return 1
	}
	// Use the symmetry I_x(a,b) = 1 − I_{1−x}(b,a) to keep the continued
	// fraction in its fast-converging region.
	if x > (a+1)/(a+b+2) {
		return 1 - RegularizedIncompleteBeta(b, a, 1-x)
	}
	lbeta := lgamma(a) + lgamma(b) - lgamma(a+b)
	front := math.Exp(a*math.Log(x)+b*math.Log(1-x)-lbeta) / a

	// Modified Lentz's algorithm for the continued fraction.
	const (
		maxIter = 300
		eps     = 1e-14
		tiny    = 1e-300
	)
	f, c, d := 1.0, 1.0, 0.0
	for i := 0; i <= maxIter; i++ {
		m := float64(i / 2)
		var numerator float64
		switch {
		case i == 0:
			numerator = 1
		case i%2 == 0:
			numerator = m * (b - m) * x / ((a + 2*m - 1) * (a + 2*m))
		default:
			numerator = -(a + m) * (a + b + m) * x / ((a + 2*m) * (a + 2*m + 1))
		}
		d = 1 + numerator*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		d = 1 / d
		c = 1 + numerator/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		cd := c * d
		f *= cd
		if math.Abs(1-cd) < eps {
			break
		}
	}
	return front * (f - 1)
}

func lgamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}

// BetaQuantile inverts I_x(a, b) = p by bisection (robust and plenty fast
// for interval construction). Domain: a, b > 0 and p ∈ [0, 1].
func BetaQuantile(a, b, p float64) float64 {
	switch {
	case a <= 0 || b <= 0 || p < 0 || p > 1 || math.IsNaN(p):
		return math.NaN()
	case p == 0:
		return 0
	case p == 1:
		return 1
	}
	lo, hi := 0.0, 1.0
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if RegularizedIncompleteBeta(a, b, mid) < p {
			lo = mid
		} else {
			hi = mid
		}
		if hi-lo < 1e-14 {
			break
		}
	}
	return (lo + hi) / 2
}

// ClopperPearson returns the exact two-sided binomial confidence interval
// for k successes out of n trials at confidence c — the "standard
// statistical technique" usable when gold answers exist. Unlike Wald and
// Wilson it guarantees coverage ≥ c for every (k, n, p).
func ClopperPearson(k, n int, c float64) Interval {
	if n <= 0 {
		return Interval{Mean: 0.5, Lo: 0, Hi: 1, Confidence: c}
	}
	alpha := 1 - c
	p := float64(k) / float64(n)
	iv := Interval{Mean: p, Confidence: c}
	if k == 0 {
		iv.Lo = 0
	} else {
		iv.Lo = BetaQuantile(float64(k), float64(n-k+1), alpha/2)
	}
	if k == n {
		iv.Hi = 1
	} else {
		iv.Hi = BetaQuantile(float64(k+1), float64(n-k), 1-alpha/2)
	}
	return iv
}
