package stat

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNormalPDF(t *testing.T) {
	// Standard normal density at 0 is 1/√(2π).
	got := StdNormal.PDF(0)
	want := 1 / math.Sqrt(2*math.Pi)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("PDF(0) = %v, want %v", got, want)
	}
	// Symmetry.
	if math.Abs(StdNormal.PDF(1.3)-StdNormal.PDF(-1.3)) > 1e-15 {
		t.Error("PDF not symmetric")
	}
}

func TestNormalCDFKnownValues(t *testing.T) {
	cases := []struct{ x, want float64 }{
		{0, 0.5},
		{1.959963984540054, 0.975},
		{-1.959963984540054, 0.025},
		{1, 0.8413447460685429},
	}
	for _, c := range cases {
		if got := StdNormal.CDF(c.x); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("CDF(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestNormalCDFShiftScale(t *testing.T) {
	n := Normal{Mu: 3, Sigma: 2}
	if got := n.CDF(3); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("CDF(mu) = %v, want 0.5", got)
	}
	if got := n.CDF(3 + 2*1.959963984540054); math.Abs(got-0.975) > 1e-9 {
		t.Errorf("CDF(mu+1.96σ) = %v, want 0.975", got)
	}
}

func TestQuantileKnownValues(t *testing.T) {
	cases := []struct{ p, want float64 }{
		{0.5, 0},
		{0.975, 1.959963984540054},
		{0.025, -1.959963984540054},
		{0.8413447460685429, 1},
	}
	for _, c := range cases {
		if got := StdNormal.Quantile(c.p); math.Abs(got-c.want) > 1e-8 {
			t.Errorf("Quantile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestQuantileEdges(t *testing.T) {
	if !math.IsInf(StdNormal.Quantile(1), 1) {
		t.Error("Quantile(1) should be +Inf")
	}
	if !math.IsInf(StdNormal.Quantile(0), -1) {
		t.Error("Quantile(0) should be -Inf")
	}
	if !math.IsNaN(StdNormal.Quantile(-0.1)) || !math.IsNaN(StdNormal.Quantile(1.1)) {
		t.Error("Quantile outside [0,1] should be NaN")
	}
}

// Property: Quantile inverts CDF across the usable range.
func TestQuantileCDFRoundTrip(t *testing.T) {
	for p := 0.01; p < 0.995; p += 0.01 {
		x := StdNormal.Quantile(p)
		if got := StdNormal.CDF(x); math.Abs(got-p) > 1e-10 {
			t.Errorf("CDF(Quantile(%v)) = %v", p, got)
		}
	}
}

func TestConfidenceZ(t *testing.T) {
	// 95% two-sided ⇒ 1.96.
	if got := ConfidenceZ(0.95); math.Abs(got-1.959963984540054) > 1e-8 {
		t.Errorf("ConfidenceZ(0.95) = %v", got)
	}
	// Monotone in c.
	prev := 0.0
	for c := 0.05; c < 1; c += 0.05 {
		z := ConfidenceZ(c)
		if z <= prev {
			t.Errorf("ConfidenceZ not increasing at c=%v", c)
		}
		prev = z
	}
}

func TestIntervalBasics(t *testing.T) {
	iv := NewInterval(0.3, 0.1, 0.9)
	if math.Abs(iv.Size()-0.2) > 1e-15 {
		t.Errorf("Size = %v, want 0.2", iv.Size())
	}
	if !iv.Contains(0.25) || iv.Contains(0.45) {
		t.Error("Contains misbehaves")
	}
	if !iv.IsValid() {
		t.Error("interval should be valid")
	}
}

func TestIntervalNegativeHalfWidth(t *testing.T) {
	iv := NewInterval(0.5, -0.1, 0.9)
	if iv.Lo != 0.4 || iv.Hi != 0.6 {
		t.Errorf("negative half width mishandled: %v", iv)
	}
}

func TestIntervalClamp(t *testing.T) {
	iv := NewInterval(0.05, 0.2, 0.9).ClampTo(0, 1)
	if iv.Lo != 0 {
		t.Errorf("Lo = %v, want 0", iv.Lo)
	}
	if math.Abs(iv.Hi-0.25) > 1e-15 {
		t.Errorf("Hi = %v, want 0.25", iv.Hi)
	}
}

func TestIntervalInvalid(t *testing.T) {
	bad := Interval{Lo: math.NaN(), Hi: 1}
	if bad.IsValid() {
		t.Error("NaN interval reported valid")
	}
	bad = Interval{Lo: 2, Hi: 1}
	if bad.IsValid() {
		t.Error("inverted interval reported valid")
	}
}

func TestIntervalString(t *testing.T) {
	if NewInterval(0.3, 0.1, 0.8).String() == "" {
		t.Error("empty String")
	}
}

func TestWilsonBasics(t *testing.T) {
	iv := Wilson(50, 100, 0.95)
	if !iv.Contains(0.5) {
		t.Errorf("Wilson(50,100) should contain 0.5: %v", iv)
	}
	if iv.Lo < 0 || iv.Hi > 1 {
		t.Errorf("Wilson out of [0,1]: %v", iv)
	}
	// Extremes stay in range.
	iv = Wilson(0, 10, 0.95)
	if iv.Lo != 0 || iv.Hi > 0.35 {
		t.Errorf("Wilson(0,10) = %v", iv)
	}
	iv = Wilson(10, 10, 0.95)
	if iv.Hi != 1 || iv.Lo < 0.65 {
		t.Errorf("Wilson(10,10) = %v", iv)
	}
}

func TestWilsonDegenerate(t *testing.T) {
	iv := Wilson(0, 0, 0.9)
	if iv.Lo != 0 || iv.Hi != 1 {
		t.Errorf("Wilson with n=0 should be vacuous, got %v", iv)
	}
}

func TestWaldMatchesHandComputation(t *testing.T) {
	iv := Wald(40, 100, 0.95)
	half := 1.959963984540054 * math.Sqrt(0.4*0.6/100)
	if math.Abs(iv.Lo-(0.4-half)) > 1e-9 || math.Abs(iv.Hi-(0.4+half)) > 1e-9 {
		t.Errorf("Wald = %v", iv)
	}
}

// Property: the Wilson interval always contains the point estimate and
// narrows as n grows.
func TestWilsonProperties(t *testing.T) {
	f := func(k8 uint8, c8 uint8) bool {
		n := 100
		k := int(k8) % (n + 1)
		c := 0.05 + 0.9*float64(c8)/255
		iv := Wilson(k, n, c)
		p := float64(k) / float64(n)
		// Containment up to roundoff: at k=0 or k=n the clamped endpoint can
		// land one ulp inside the unit interval.
		if p < iv.Lo-1e-12 || p > iv.Hi+1e-12 {
			return false
		}
		big := Wilson(k*10, n*10, c)
		return big.Size() <= iv.Size()+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestMeanVariance(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if got := Mean(xs); got != 2.5 {
		t.Errorf("Mean = %v", got)
	}
	if got := Variance(xs); math.Abs(got-1.25) > 1e-12 {
		t.Errorf("Variance = %v, want 1.25", got)
	}
	if got := SampleVariance(xs); math.Abs(got-5.0/3) > 1e-12 {
		t.Errorf("SampleVariance = %v, want 5/3", got)
	}
	if got := StdDev(xs); math.Abs(got-math.Sqrt(1.25)) > 1e-12 {
		t.Errorf("StdDev = %v", got)
	}
}

func TestMomentsEmpty(t *testing.T) {
	if !math.IsNaN(Mean(nil)) || !math.IsNaN(Variance(nil)) {
		t.Error("empty moments should be NaN")
	}
	if !math.IsNaN(SampleVariance([]float64{1})) {
		t.Error("SampleVariance of singleton should be NaN")
	}
}

func TestCovariance(t *testing.T) {
	xs := []float64{1, 2, 3}
	ys := []float64{2, 4, 6}
	// Cov(x, 2x) = 2·Var(x) = 2·(2/3).
	if got := Covariance(xs, ys); math.Abs(got-4.0/3) > 1e-12 {
		t.Errorf("Covariance = %v, want 4/3", got)
	}
	if !math.IsNaN(Covariance(xs, ys[:2])) {
		t.Error("length mismatch should be NaN")
	}
}

// Property: Var(x) = Cov(x, x) ≥ 0.
func TestVarianceCovarianceConsistency(t *testing.T) {
	f := func(raw [8]float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) && math.Abs(v) < 1e100 {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		va, cov := Variance(xs), Covariance(xs, xs)
		return va >= 0 && math.Abs(va-cov) <= 1e-9*(1+va)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestBernoulliBinomial(t *testing.T) {
	if got := BernoulliVar(0.3); math.Abs(got-0.21) > 1e-12 {
		t.Errorf("BernoulliVar = %v", got)
	}
	mean, v := BinomialMeanVar(100, 0.2)
	if mean != 20 || math.Abs(v-16) > 1e-12 {
		t.Errorf("BinomialMeanVar = %v, %v", mean, v)
	}
}

func TestClamp01(t *testing.T) {
	if Clamp01(-0.5) != 0 || Clamp01(1.5) != 1 || Clamp01(0.3) != 0.3 {
		t.Error("Clamp01 misbehaves")
	}
}
