package stat

import "math"

// Mean returns the arithmetic mean of xs, or NaN for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the population variance of xs (divide by n), or NaN for
// empty input. The delta-method machinery works with population moments.
func Variance(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// SampleVariance returns the unbiased sample variance (divide by n−1), or
// NaN when fewer than two observations are given.
func SampleVariance(xs []float64) float64 {
	if len(xs) < 2 {
		return math.NaN()
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs)-1)
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Covariance returns the population covariance of paired samples xs, ys.
// It returns NaN when the lengths differ or the input is empty.
func Covariance(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) == 0 {
		return math.NaN()
	}
	mx, my := Mean(xs), Mean(ys)
	var s float64
	for i := range xs {
		s += (xs[i] - mx) * (ys[i] - my)
	}
	return s / float64(len(xs))
}

// BernoulliVar returns the variance p(1−p) of a Bernoulli(p) variable.
func BernoulliVar(p float64) float64 { return p * (1 - p) }

// BinomialMeanVar returns the mean and variance of a Binomial(n, p) count.
func BinomialMeanVar(n int, p float64) (mean, variance float64) {
	nf := float64(n)
	return nf * p, nf * p * (1 - p)
}

// Clamp01 restricts x to the closed unit interval.
func Clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
