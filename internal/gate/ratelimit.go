package gate

import (
	"math"
	"sync"
	"time"

	"crowdassess/internal/obs"
)

// tokenBucket is a classic leaky token bucket: capacity Burst tokens,
// refilled continuously at Rate tokens/second. It is clock-injected (the
// gateway threads the obs registry's clock through) so rate-limit tests
// drive time explicitly instead of sleeping.
type tokenBucket struct {
	clock obs.Clock
	rate  float64 // tokens per second
	burst float64 // bucket capacity

	mu     sync.Mutex
	tokens float64
	last   time.Time
}

// newTokenBucket returns a full bucket. rate must be positive; burst is
// clamped to at least one token (a bucket that can never hold a whole
// token would reject everything).
func newTokenBucket(clock obs.Clock, rate float64, burst int) *tokenBucket {
	b := float64(burst)
	if b < 1 {
		b = math.Ceil(rate)
		if b < 1 {
			b = 1
		}
	}
	return &tokenBucket{clock: clock, rate: rate, burst: b, tokens: b, last: clock.Now()}
}

// take attempts to consume one token. On success it reports the whole
// tokens remaining; on refusal it reports how long until the next token
// accrues — the Retry-After hint the 429 carries.
func (b *tokenBucket) take() (ok bool, remaining int, retryAfter time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	now := b.clock.Now()
	b.tokens += now.Sub(b.last).Seconds() * b.rate
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true, int(b.tokens), 0
	}
	need := (1 - b.tokens) / b.rate
	return false, 0, time.Duration(math.Ceil(need * float64(time.Second)))
}
