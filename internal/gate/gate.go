// Package gate is the public serving layer in front of the assessment
// engine: a versioned HTTP/JSON API with per-tenant namespaces, static
// token auth, token-bucket rate limiting, and admission-control
// backpressure that sheds load with 429 + Retry-After before the
// coordinator behind it melts.
//
// Each tenant owns an isolated pool.Manager — its own crowd, statistics
// and lifecycle state — so one gateway serves many customers without any
// cross-tenant visibility. A tenant's manager can run over a local
// sharded evaluator (the default) or over a distributed cluster via
// dist.ClusterEvaluator; the routes behave identically.
//
// Routes (see docs/api.md for the full reference):
//
//	POST /v1/responses:batch  batch response ingest
//	GET  /v1/workers/{id}     one worker's state, responses and interval
//	GET  /v1/workers          every worker's quality record
//	POST /v1/pool/review      run one lifecycle review, return decisions
//	GET  /v1/healthz          liveness (unauthenticated)
//
// Every non-2xx response carries the ErrorBody envelope. Rate-limited
// and shed requests answer 429 with a Retry-After header; authenticated
// successes carry X-RateLimit-Limit and X-RateLimit-Remaining when the
// tenant is rate-limited.
package gate

import (
	"crypto/subtle"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"strconv"
	"strings"

	"time"

	"crowdassess/internal/crowd"
	"crowdassess/internal/obs"
	"crowdassess/internal/pool"
)

// MaxBatch is the largest number of responses one POST /v1/responses:batch
// call may carry; larger batches are rejected with 400 rather than letting
// a single request monopolize an admission slot.
const MaxBatch = 10000

// maxBodyBytes bounds a request body read: MaxBatch small JSON records
// fit comfortably, anything larger is garbage or abuse.
const maxBodyBytes = 8 << 20

// TenantConfig declares one tenant namespace of the gateway.
type TenantConfig struct {
	// Name identifies the tenant in metrics and logs. Required, unique.
	Name string
	// Token is the tenant's static bearer token. Required, unique,
	// compared constant-time.
	Token string
	// Workers is the tenant's crowd size. Required unless Manager is set.
	Workers int
	// Shards is the tenant's local evaluator shard count (0 = single
	// shard). Ignored when Manager is set.
	Shards int
	// Policy sets the tenant's pool decision bars; nil selects
	// pool.DefaultPolicy.
	Policy *pool.Policy
	// RatePerSec caps the tenant's sustained request rate through a token
	// bucket; 0 or negative means unlimited.
	RatePerSec float64
	// Burst is the token bucket capacity; 0 selects ceil(RatePerSec),
	// floored at one token.
	Burst int
	// Manager, when non-nil, is the tenant's pre-built backend — this is
	// how a tenant fronts a distributed cluster (pool.NewManagerWith over
	// dist.NewClusterEvaluator). When nil, the gateway builds a local
	// sharded manager from Workers/Shards/Policy.
	Manager *pool.Manager
	// Flush, when non-nil, runs after every ingest batch — the hook a
	// buffered cluster evaluator needs to ship the batch and surface
	// remote rejections on the request that carried them.
	Flush func() error
}

// Options configures New.
type Options struct {
	// Tenants is the tenant set; at least one is required.
	Tenants []TenantConfig
	// QueueDepth bounds the number of requests admitted into the backend
	// concurrently; requests beyond it are shed with 429 + Retry-After.
	// 0 selects DefaultQueueDepth.
	QueueDepth int
	// RetryAfter is the advisory Retry-After duration on shed (queue
	// full) responses; 0 selects DefaultRetryAfter.
	RetryAfter time.Duration
	// Registry receives gate_requests_total{tenant,code},
	// gate_queue_depth and gate_request_seconds{route}; its clock drives
	// the rate limiters. Nil builds a private registry on the system
	// clock.
	Registry *obs.Registry
	// Logger, when non-nil, gets one structured line per rejected
	// request (auth failures, sheds) — successes are the HTTP
	// middleware's job.
	Logger *slog.Logger
}

// DefaultQueueDepth is the admission-queue bound when Options.QueueDepth
// is zero: deep enough to keep a healthy backend busy, shallow enough
// that a wedged one sheds within one client timeout.
const DefaultQueueDepth = 64

// DefaultRetryAfter is the advisory Retry-After on shed responses when
// Options.RetryAfter is zero.
const DefaultRetryAfter = time.Second

// tenant is one resolved tenant namespace.
type tenant struct {
	name   string
	token  []byte
	mgr    *pool.Manager
	flush  func() error
	bucket *tokenBucket
	limit  float64 // advertised X-RateLimit-Limit; 0 = unlimited
}

// Gateway is the serving layer: an http.Handler multiplexing the /v1
// API over its tenant set. Build one with New; it is safe for
// concurrent use.
type Gateway struct {
	reg     *obs.Registry
	clock   obs.Clock
	logger  *slog.Logger
	tenants []*tenant
	sem     chan struct{}
	shedSec float64 // Retry-After seconds advertised on sheds
	mux     *http.ServeMux
}

// New builds a gateway over the given tenants. Each tenant without a
// pre-built Manager gets its own local sharded pool manager, so tenants
// are isolated by construction: there is no route that reaches another
// tenant's statistics.
func New(opts Options) (*Gateway, error) {
	if len(opts.Tenants) == 0 {
		return nil, fmt.Errorf("gate: at least one tenant is required")
	}
	reg := opts.Registry
	if reg == nil {
		reg = obs.NewRegistry(nil)
	}
	if opts.QueueDepth < 0 {
		return nil, fmt.Errorf("gate: negative QueueDepth %d", opts.QueueDepth)
	}
	depth := opts.QueueDepth
	if depth == 0 {
		depth = DefaultQueueDepth
	}
	retryAfter := opts.RetryAfter
	if retryAfter <= 0 {
		retryAfter = DefaultRetryAfter
	}
	g := &Gateway{
		reg:     reg,
		clock:   reg.Clock(),
		logger:  opts.Logger,
		sem:     make(chan struct{}, depth),
		shedSec: retryAfter.Seconds(),
	}
	names := map[string]bool{}
	tokens := map[string]bool{}
	for _, tc := range opts.Tenants {
		if tc.Name == "" || tc.Token == "" {
			return nil, fmt.Errorf("gate: tenant name and token are required")
		}
		if names[tc.Name] {
			return nil, fmt.Errorf("gate: duplicate tenant name %q", tc.Name)
		}
		if tokens[tc.Token] {
			return nil, fmt.Errorf("gate: duplicate token (tenant %q)", tc.Name)
		}
		names[tc.Name], tokens[tc.Token] = true, true
		mgr := tc.Manager
		if mgr == nil {
			if tc.Workers <= 0 {
				return nil, fmt.Errorf("gate: tenant %q: positive Workers required without a Manager", tc.Name)
			}
			policy := pool.DefaultPolicy()
			if tc.Policy != nil {
				policy = *tc.Policy
			}
			var err error
			if mgr, err = pool.NewShardedManager(tc.Workers, tc.Shards, policy); err != nil {
				return nil, fmt.Errorf("gate: tenant %q: %w", tc.Name, err)
			}
		}
		t := &tenant{name: tc.Name, token: []byte(tc.Token), mgr: mgr, flush: tc.Flush}
		if tc.RatePerSec > 0 {
			t.bucket = newTokenBucket(g.clock, tc.RatePerSec, tc.Burst)
			t.limit = tc.RatePerSec
		}
		g.tenants = append(g.tenants, t)
	}
	reg.GaugeFunc("gate_queue_depth",
		"Requests currently admitted into the gateway's backend queue.",
		func() float64 { return float64(len(g.sem)) })
	g.mux = http.NewServeMux()
	g.route("/v1/responses:batch", http.MethodPost, g.handleIngest)
	g.route("/v1/workers", http.MethodGet, g.handleWorkers)
	g.route("/v1/workers/{id}", http.MethodGet, g.handleWorker)
	g.route("/v1/pool/review", http.MethodPost, g.handleReview)
	g.mux.HandleFunc("/v1/healthz", g.observe("/v1/healthz", g.handleHealthz))
	return g, nil
}

// ServeHTTP serves the /v1 API.
func (g *Gateway) ServeHTTP(w http.ResponseWriter, r *http.Request) { g.mux.ServeHTTP(w, r) }

// Tenant returns the backend pool manager for the named tenant, or nil —
// for operators embedding the gateway that need direct access (tests,
// warm-up loaders).
func (g *Gateway) Tenant(name string) *pool.Manager {
	for _, t := range g.tenants {
		if t.name == name {
			return t.mgr
		}
	}
	return nil
}

// statusRecorder captures the status code a handler wrote so the
// request counter can label it.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

// WriteHeader records the status before delegating.
func (s *statusRecorder) WriteHeader(code int) {
	s.status = code
	s.ResponseWriter.WriteHeader(code)
}

// route registers an authenticated, rate-limited, admission-controlled
// API route. The method check is ours (not the mux pattern's) so a
// wrong-method hit gets the JSON envelope, not net/http's text page.
func (g *Gateway) route(pattern, method string, h func(*tenant, http.ResponseWriter, *http.Request)) {
	g.mux.HandleFunc(pattern, g.observe(pattern, func(w http.ResponseWriter, r *http.Request) {
		if r.Method != method {
			WriteError(w, http.StatusMethodNotAllowed, CodeMethodNotAllowed,
				fmt.Sprintf("%s requires %s", pattern, method))
			return
		}
		t := g.authenticate(r)
		if t == nil {
			g.reject(r, "auth")
			WriteError(w, http.StatusUnauthorized, CodeUnauthorized,
				"missing or unrecognized bearer token")
			return
		}
		if t.bucket != nil {
			ok, remaining, retryAfter := t.bucket.take()
			w.Header().Set("X-RateLimit-Limit", strconv.FormatFloat(t.limit, 'g', -1, 64))
			w.Header().Set("X-RateLimit-Remaining", strconv.Itoa(remaining))
			if !ok {
				g.reject(r, "rate")
				w.Header().Set("Retry-After", retryAfterSeconds(retryAfter.Seconds()))
				WriteError(w, http.StatusTooManyRequests, CodeRateLimited,
					fmt.Sprintf("tenant %q over %g req/s", t.name, t.limit))
				return
			}
		}
		select {
		case g.sem <- struct{}{}:
			defer func() { <-g.sem }()
		default:
			g.reject(r, "shed")
			w.Header().Set("Retry-After", retryAfterSeconds(g.shedSec))
			WriteError(w, http.StatusTooManyRequests, CodeOverloaded,
				"ingest queue full; retry after backoff")
			return
		}
		h(t, w, r)
	}))
}

// observe wraps a handler with the gateway's own metrics: per-route
// latency and a per-tenant, per-status request counter. The tenant
// label resolves to "-" for unauthenticated traffic so failed auth
// cannot mint unbounded label values.
func (g *Gateway) observe(routeLabel string, h http.HandlerFunc) http.HandlerFunc {
	hist := g.reg.Histogram("gate_request_seconds",
		"Gateway request latency by route.", nil, obs.Label{Key: "route", Value: routeLabel})
	return func(w http.ResponseWriter, r *http.Request) {
		start := g.clock.Now()
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		h(rec, r)
		hist.Observe(g.clock.Since(start).Seconds())
		name := "-"
		if t := g.authenticate(r); t != nil {
			name = t.name
		}
		g.reg.Counter("gate_requests_total",
			"Gateway requests by tenant and status code.",
			obs.Label{Key: "tenant", Value: name},
			obs.Label{Key: "code", Value: strconv.Itoa(rec.status)}).Inc()
	}
}

// reject logs one structured line for a turned-away request.
func (g *Gateway) reject(r *http.Request, why string) {
	if g.logger != nil {
		g.logger.Info("gate_reject", "path", r.URL.Path, "why", why)
	}
}

// authenticate resolves the request's bearer token to a tenant, or nil.
// Comparison is constant-time per tenant; the tenant count is small and
// operator-controlled, so the scan itself leaks nothing useful.
func (g *Gateway) authenticate(r *http.Request) *tenant {
	auth := r.Header.Get("Authorization")
	const prefix = "Bearer "
	if !strings.HasPrefix(auth, prefix) {
		return nil
	}
	token := []byte(strings.TrimPrefix(auth, prefix))
	for _, t := range g.tenants {
		if len(t.token) == len(token) && subtle.ConstantTimeCompare(t.token, token) == 1 {
			return t
		}
	}
	return nil
}

// retryAfterSeconds renders a Retry-After header value: integral
// seconds, rounded up, floored at 1 (a Retry-After of 0 invites an
// immediate retry into the same congestion).
func retryAfterSeconds(s float64) string {
	n := int(s)
	if float64(n) < s {
		n++
	}
	if n < 1 {
		n = 1
	}
	return strconv.Itoa(n)
}

// ResponseRec is one crowd response in an ingest batch.
type ResponseRec struct {
	// Worker is the worker index in the tenant's crowd, 0-based.
	Worker int `json:"worker"`
	// Task is the task index; any non-negative value, the task space is
	// open-ended.
	Task int `json:"task"`
	// Answer is the response class: 1 (yes) or 2 (no) for binary crowds.
	Answer int `json:"answer"`
}

// IngestRequest is the body of POST /v1/responses:batch.
type IngestRequest struct {
	Responses []ResponseRec `json:"responses"`
}

// IngestResult is the success body of POST /v1/responses:batch.
type IngestResult struct {
	// Ingested is the number of responses recorded.
	Ingested int `json:"ingested"`
	// Rejected is the number of responses turned away because the worker
	// is fired — not an error: the paper's lifecycle excludes fired
	// workers from further tasks, and a racing submission is expected.
	Rejected int `json:"rejected"`
}

// handleIngest is POST /v1/responses:batch: validate the whole batch up
// front, then record every response through the tenant's pool manager —
// fired workers count as rejected — and flush the backend so remote
// rejections surface on this request.
func (g *Gateway) handleIngest(t *tenant, w http.ResponseWriter, r *http.Request) {
	var req IngestRequest
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		WriteError(w, http.StatusBadRequest, CodeBadRequest, "decoding body: "+err.Error())
		return
	}
	if len(req.Responses) > MaxBatch {
		WriteError(w, http.StatusBadRequest, CodeBadRequest,
			fmt.Sprintf("batch of %d exceeds limit %d", len(req.Responses), MaxBatch))
		return
	}
	workers := t.mgr.Workers()
	for i, rec := range req.Responses {
		if rec.Worker < 0 || rec.Worker >= workers {
			WriteError(w, http.StatusBadRequest, CodeBadRequest,
				fmt.Sprintf("responses[%d]: worker %d outside crowd of %d", i, rec.Worker, workers))
			return
		}
		if rec.Task < 0 {
			WriteError(w, http.StatusBadRequest, CodeBadRequest,
				fmt.Sprintf("responses[%d]: negative task %d", i, rec.Task))
			return
		}
		if rec.Answer != int(crowd.Yes) && rec.Answer != int(crowd.No) {
			WriteError(w, http.StatusBadRequest, CodeBadRequest,
				fmt.Sprintf("responses[%d]: answer %d is not 1 (yes) or 2 (no)", i, rec.Answer))
			return
		}
	}
	res := IngestResult{}
	for _, rec := range req.Responses {
		err := t.mgr.Record(rec.Worker, rec.Task, crowd.Response(rec.Answer))
		switch {
		case errors.Is(err, pool.ErrFired):
			res.Rejected++
		case err != nil:
			WriteError(w, http.StatusBadGateway, CodeUpstream, err.Error())
			return
		default:
			res.Ingested++
		}
	}
	if t.flush != nil {
		if err := t.flush(); err != nil {
			WriteError(w, http.StatusBadGateway, CodeUpstream, err.Error())
			return
		}
	}
	writeJSON(w, res)
}

// EstimateView is a confidence interval as the API renders it.
type EstimateView struct {
	// Mean is the point estimate of the worker's error rate.
	Mean float64 `json:"mean"`
	// Lo and Hi are the interval endpoints.
	Lo float64 `json:"lo"`
	Hi float64 `json:"hi"`
	// Confidence is the interval's confidence level.
	Confidence float64 `json:"confidence"`
}

// WorkerView is the body of GET /v1/workers/{id} and one element of
// GET /v1/workers.
type WorkerView struct {
	// Worker is the worker index.
	Worker int `json:"worker"`
	// State is the lifecycle state: "probation", "active" or "fired".
	State string `json:"state"`
	// Responses is how many of the worker's responses are recorded.
	Responses int `json:"responses"`
	// Estimate is the current error-rate interval, null until the policy's
	// MinResponses responses are recorded (or while no estimate exists).
	Estimate *EstimateView `json:"estimate"`
}

// handleWorker is GET /v1/workers/{id}: one worker's quality record
// from the tenant's isolated statistics.
func (g *Gateway) handleWorker(t *tenant, w http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		WriteError(w, http.StatusBadRequest, CodeBadRequest, "worker id must be an integer")
		return
	}
	if id < 0 || id >= t.mgr.Workers() {
		WriteError(w, http.StatusNotFound, CodeNotFound,
			fmt.Sprintf("worker %d outside crowd of %d", id, t.mgr.Workers()))
		return
	}
	info, err := t.mgr.WorkerInfo(id)
	if err != nil {
		WriteError(w, http.StatusBadGateway, CodeUpstream, err.Error())
		return
	}
	writeJSON(w, workerView(info))
}

// handleWorkers is GET /v1/workers: the whole crowd's quality records.
func (g *Gateway) handleWorkers(t *tenant, w http.ResponseWriter, r *http.Request) {
	views := make([]WorkerView, t.mgr.Workers())
	for id := range views {
		info, err := t.mgr.WorkerInfo(id)
		if err != nil {
			WriteError(w, http.StatusBadGateway, CodeUpstream, err.Error())
			return
		}
		views[id] = workerView(info)
	}
	writeJSON(w, map[string]any{"workers": views})
}

// workerView renders one pool.WorkerInfo for the API.
func workerView(info pool.WorkerInfo) WorkerView {
	v := WorkerView{Worker: info.Worker, State: info.State.String(), Responses: info.Responses}
	if info.Estimate != nil {
		iv := info.Estimate.Interval
		v.Estimate = &EstimateView{Mean: iv.Mean, Lo: iv.Lo, Hi: iv.Hi, Confidence: iv.Confidence}
	}
	return v
}

// DecisionView is one lifecycle decision as POST /v1/pool/review
// renders it.
type DecisionView struct {
	// Worker is the worker the decision concerns.
	Worker int `json:"worker"`
	// Action is "no-change", "promote" or "fire".
	Action string `json:"action"`
	// State is the worker's state after the action.
	State string `json:"state"`
	// IntervalLo and IntervalHi are the evidence interval endpoints
	// (zero when the decision used the spammer screen).
	IntervalLo float64 `json:"interval_lo"`
	IntervalHi float64 `json:"interval_hi"`
	// Reason explains the decision in the policy's terms.
	Reason string `json:"reason"`
}

// ReviewResult is the body of POST /v1/pool/review.
type ReviewResult struct {
	Decisions []DecisionView `json:"decisions"`
}

// handleReview is POST /v1/pool/review: apply the tenant's policy to
// its current statistics and return the decisions.
func (g *Gateway) handleReview(t *tenant, w http.ResponseWriter, r *http.Request) {
	decisions, err := t.mgr.Review()
	if err != nil {
		WriteError(w, http.StatusBadGateway, CodeUpstream, err.Error())
		return
	}
	res := ReviewResult{Decisions: make([]DecisionView, len(decisions))}
	for i, d := range decisions {
		res.Decisions[i] = DecisionView{
			Worker: d.Worker, Action: d.Action.String(), State: d.State.String(),
			IntervalLo: d.Interval.Lo, IntervalHi: d.Interval.Hi, Reason: d.Reason,
		}
	}
	writeJSON(w, res)
}

// HealthView is the body of GET /v1/healthz.
type HealthView struct {
	// Status is "ok" — the gateway answers or it doesn't.
	Status string `json:"status"`
	// UptimeSeconds is the gateway's registry uptime.
	UptimeSeconds float64 `json:"uptime_s"`
	// Tenants is the number of configured tenant namespaces.
	Tenants int `json:"tenants"`
}

// handleHealthz is GET /v1/healthz — unauthenticated liveness, outside
// rate limiting and admission control so probes never contend with
// traffic.
func (g *Gateway) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		WriteError(w, http.StatusMethodNotAllowed, CodeMethodNotAllowed, "/v1/healthz requires GET")
		return
	}
	writeJSON(w, HealthView{Status: "ok", UptimeSeconds: g.reg.Uptime().Seconds(), Tenants: len(g.tenants)})
}

// writeJSON writes a 200 JSON body.
func writeJSON(w http.ResponseWriter, body any) {
	w.Header().Set("Content-Type", "application/json")
	//crowdvet:ignore errclass bodies are flat views assembled above; the only encode failure is the client hanging up
	_ = json.NewEncoder(w).Encode(body)
}
