package gate_test

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"crowdassess/internal/core"
	"crowdassess/internal/crowd"
	"crowdassess/internal/gate"
	"crowdassess/internal/obs"
	"crowdassess/internal/pool"
)

// fakeClock is a settable clock so rate-limit tests drive refills
// explicitly instead of sleeping.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Since(t time.Time) time.Duration { return c.Now().Sub(t) }

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
}

// doReq runs one request against the gateway and returns the recorder.
func doReq(t *testing.T, gw *gate.Gateway, method, path, token, body string) *httptest.ResponseRecorder {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req := httptest.NewRequest(method, path, rd)
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	w := httptest.NewRecorder()
	gw.ServeHTTP(w, req)
	return w
}

// envelopeCode decodes the unified error envelope and returns its code.
func envelopeCode(t *testing.T, body string) string {
	t.Helper()
	var eb gate.ErrorBody
	if err := json.Unmarshal([]byte(body), &eb); err != nil {
		t.Fatalf("response %q is not the error envelope: %v", body, err)
	}
	if eb.Error.Message == "" {
		t.Errorf("envelope %q carries no message", body)
	}
	return eb.Error.Code
}

func newTwoTenantGateway(t *testing.T) *gate.Gateway {
	t.Helper()
	gw, err := gate.New(gate.Options{Tenants: []gate.TenantConfig{
		{Name: "alpha", Token: "alpha-token", Workers: 4},
		{Name: "beta", Token: "beta-token", Workers: 8},
	}})
	if err != nil {
		t.Fatalf("gate.New: %v", err)
	}
	return gw
}

func TestAuthRejectionEnvelope(t *testing.T) {
	gw := newTwoTenantGateway(t)
	cases := []struct {
		name, header string
	}{
		{"missing token", ""},
		{"wrong token", "Bearer nope"},
		{"near-miss token", "Bearer alpha-token2"},
		{"malformed scheme", "Token alpha-token"},
	}
	for _, tc := range cases {
		req := httptest.NewRequest(http.MethodGet, "/v1/workers/0", nil)
		if tc.header != "" {
			req.Header.Set("Authorization", tc.header)
		}
		w := httptest.NewRecorder()
		gw.ServeHTTP(w, req)
		if w.Code != http.StatusUnauthorized {
			t.Errorf("%s: status %d, want 401", tc.name, w.Code)
		}
		if code := envelopeCode(t, w.Body.String()); code != gate.CodeUnauthorized {
			t.Errorf("%s: envelope code %q, want %q", tc.name, code, gate.CodeUnauthorized)
		}
	}

	// Healthz stays open: no token required.
	if w := doReq(t, gw, http.MethodGet, "/v1/healthz", "", ""); w.Code != http.StatusOK {
		t.Errorf("healthz without token: status %d, want 200", w.Code)
	}
}

func TestMethodNotAllowedEnvelope(t *testing.T) {
	gw := newTwoTenantGateway(t)
	w := doReq(t, gw, http.MethodGet, "/v1/responses:batch", "alpha-token", "")
	if w.Code != http.StatusMethodNotAllowed {
		t.Fatalf("status %d, want 405", w.Code)
	}
	if code := envelopeCode(t, w.Body.String()); code != gate.CodeMethodNotAllowed {
		t.Errorf("envelope code %q, want %q", code, gate.CodeMethodNotAllowed)
	}
}

func TestCrossTenantIsolation(t *testing.T) {
	gw := newTwoTenantGateway(t)

	// Alpha ingests two responses for worker 1.
	w := doReq(t, gw, http.MethodPost, "/v1/responses:batch", "alpha-token",
		`{"responses":[{"worker":1,"task":0,"answer":1},{"worker":1,"task":1,"answer":2}]}`)
	if w.Code != http.StatusOK {
		t.Fatalf("alpha ingest: status %d body %s", w.Code, w.Body.String())
	}
	var res gate.IngestResult
	if err := json.Unmarshal(w.Body.Bytes(), &res); err != nil || res.Ingested != 2 {
		t.Fatalf("alpha ingest result %s (err %v), want ingested 2", w.Body.String(), err)
	}

	// Alpha sees its own statistics...
	var wv gate.WorkerView
	w = doReq(t, gw, http.MethodGet, "/v1/workers/1", "alpha-token", "")
	if err := json.Unmarshal(w.Body.Bytes(), &wv); err != nil || wv.Responses != 2 {
		t.Fatalf("alpha worker 1 = %s (err %v), want 2 responses", w.Body.String(), err)
	}

	// ...and beta sees none of them: same worker index, isolated crowd.
	w = doReq(t, gw, http.MethodGet, "/v1/workers/1", "beta-token", "")
	if err := json.Unmarshal(w.Body.Bytes(), &wv); err != nil || wv.Responses != 0 {
		t.Fatalf("beta worker 1 = %s (err %v), want 0 responses", w.Body.String(), err)
	}

	// Index spaces are per-tenant too: worker 5 exists for beta (crowd 8)
	// but not for alpha (crowd 4).
	if w = doReq(t, gw, http.MethodGet, "/v1/workers/5", "beta-token", ""); w.Code != http.StatusOK {
		t.Errorf("beta worker 5: status %d, want 200", w.Code)
	}
	w = doReq(t, gw, http.MethodGet, "/v1/workers/5", "alpha-token", "")
	if w.Code != http.StatusNotFound {
		t.Errorf("alpha worker 5: status %d, want 404", w.Code)
	}
	if code := envelopeCode(t, w.Body.String()); code != gate.CodeNotFound {
		t.Errorf("alpha worker 5 envelope code %q, want %q", code, gate.CodeNotFound)
	}
}

func TestRateLimit429Envelope(t *testing.T) {
	clk := &fakeClock{now: time.Unix(1000, 0)}
	reg := obs.NewRegistry(clk)
	gw, err := gate.New(gate.Options{
		Registry: reg,
		Tenants: []gate.TenantConfig{
			{Name: "limited", Token: "tok", Workers: 4, RatePerSec: 1, Burst: 2},
		},
	})
	if err != nil {
		t.Fatalf("gate.New: %v", err)
	}

	// The bucket starts full: Burst requests pass, carrying the
	// rate-limit headers.
	for i := 0; i < 2; i++ {
		w := doReq(t, gw, http.MethodGet, "/v1/workers/0", "tok", "")
		if w.Code != http.StatusOK {
			t.Fatalf("request %d: status %d body %s", i, w.Code, w.Body.String())
		}
		if got := w.Header().Get("X-RateLimit-Limit"); got != "1" {
			t.Errorf("request %d: X-RateLimit-Limit %q, want \"1\"", i, got)
		}
	}

	// The third request inside the same instant is over the limit.
	w := doReq(t, gw, http.MethodGet, "/v1/workers/0", "tok", "")
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("over-limit: status %d, want 429", w.Code)
	}
	if code := envelopeCode(t, w.Body.String()); code != gate.CodeRateLimited {
		t.Errorf("over-limit envelope code %q, want %q", code, gate.CodeRateLimited)
	}
	if ra := w.Header().Get("Retry-After"); ra != "1" {
		t.Errorf("over-limit Retry-After %q, want \"1\"", ra)
	}
	if rem := w.Header().Get("X-RateLimit-Remaining"); rem != "0" {
		t.Errorf("over-limit X-RateLimit-Remaining %q, want \"0\"", rem)
	}

	// One second later a token has accrued.
	clk.advance(time.Second)
	if w := doReq(t, gw, http.MethodGet, "/v1/workers/0", "tok", ""); w.Code != http.StatusOK {
		t.Errorf("after refill: status %d, want 200", w.Code)
	}
}

// wedgedEvaluator delegates to a real evaluator but blocks every Add
// until released, emulating a coordinator that stopped answering.
type wedgedEvaluator struct {
	core.StreamingEvaluator
	entered chan struct{} // closed once the first Add is inside
	release chan struct{} // Adds proceed when closed
	once    sync.Once
}

func (w *wedgedEvaluator) Add(wk, t int, r crowd.Response) error {
	w.once.Do(func() { close(w.entered) })
	<-w.release
	return w.StreamingEvaluator.Add(wk, t, r)
}

func TestBackpressureSheddingUnderWedgedBackend(t *testing.T) {
	inner, err := core.NewStreaming(4, core.IncrementalOptions{})
	if err != nil {
		t.Fatalf("NewStreaming: %v", err)
	}
	wedged := &wedgedEvaluator{
		StreamingEvaluator: inner,
		entered:            make(chan struct{}),
		release:            make(chan struct{}),
	}
	mgr, err := pool.NewManagerWith(wedged, pool.DefaultPolicy())
	if err != nil {
		t.Fatalf("NewManagerWith: %v", err)
	}
	gw, err := gate.New(gate.Options{
		QueueDepth: 1,
		RetryAfter: 3 * time.Second,
		Tenants:    []gate.TenantConfig{{Name: "t", Token: "tok", Manager: mgr}},
	})
	if err != nil {
		t.Fatalf("gate.New: %v", err)
	}
	srv := httptest.NewServer(gw)
	defer srv.Close()

	ingest := func() (*http.Response, error) {
		req, err := http.NewRequest(http.MethodPost, srv.URL+"/v1/responses:batch",
			strings.NewReader(`{"responses":[{"worker":0,"task":0,"answer":1}]}`))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Authorization", "Bearer tok")
		req.Header.Set("Content-Type", "application/json")
		return http.DefaultClient.Do(req)
	}

	// One request wedges inside the backend, owning the only admission
	// slot.
	type result struct {
		resp *http.Response
		err  error
	}
	firstDone := make(chan result, 1)
	go func() {
		resp, err := ingest()
		firstDone <- result{resp, err}
	}()
	<-wedged.entered

	// Every further API request is shed before admission: 429 with the
	// overloaded code and the configured Retry-After.
	resp, err := ingest()
	if err != nil {
		t.Fatalf("shed request: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("shed request: status %d body %s, want 429", resp.StatusCode, body)
	}
	if code := envelopeCode(t, string(body)); code != gate.CodeOverloaded {
		t.Errorf("shed envelope code %q, want %q", code, gate.CodeOverloaded)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "3" {
		t.Errorf("shed Retry-After %q, want \"3\"", ra)
	}

	// Healthz stays exempt from admission control while saturated — the
	// probe must not report a shedding gateway dead.
	hz, err := http.Get(srv.URL + "/v1/healthz")
	if err != nil {
		t.Fatalf("healthz during saturation: %v", err)
	}
	hz.Body.Close()
	if hz.StatusCode != http.StatusOK {
		t.Errorf("healthz during saturation: status %d, want 200", hz.StatusCode)
	}

	// Unwedging the backend lets the admitted request finish normally —
	// it was queued, not dropped.
	close(wedged.release)
	r := <-firstDone
	if r.err != nil {
		t.Fatalf("wedged request: %v", r.err)
	}
	defer r.resp.Body.Close()
	if r.resp.StatusCode != http.StatusOK {
		t.Errorf("wedged request: status %d, want 200", r.resp.StatusCode)
	}
}
