package gate

import (
	"encoding/json"
	"net/http"
)

// Error codes every JSON error response carries. They are part of the
// public API contract (docs/api.md): clients dispatch on the code, the
// message is for humans and may change freely.
const (
	// CodeBadRequest marks a malformed or semantically invalid request
	// body, parameter or path segment (HTTP 400).
	CodeBadRequest = "bad_request"
	// CodeUnauthorized marks a missing or unrecognized tenant token
	// (HTTP 401).
	CodeUnauthorized = "unauthorized"
	// CodeNotFound marks a resource outside the tenant's namespace, such
	// as a worker index out of range (HTTP 404).
	CodeNotFound = "not_found"
	// CodeMethodNotAllowed marks a known route hit with the wrong HTTP
	// method (HTTP 405).
	CodeMethodNotAllowed = "method_not_allowed"
	// CodeRateLimited marks a request rejected by the tenant's token
	// bucket (HTTP 429 with Retry-After).
	CodeRateLimited = "rate_limited"
	// CodeOverloaded marks a request shed by admission control: the
	// gateway's bounded ingest queue is full (HTTP 429 with Retry-After).
	CodeOverloaded = "overloaded"
	// CodeUpstream marks a backend failure — the coordinator or evaluator
	// behind the tenant failed the operation (HTTP 502).
	CodeUpstream = "upstream"
)

// ErrorDetail is the machine-readable half of an error response: a
// stable code plus a human-readable message.
type ErrorDetail struct {
	// Code is one of the Code* constants.
	Code string `json:"code"`
	// Message describes the specific failure; not part of the stable API.
	Message string `json:"message"`
}

// ErrorBody is the single JSON error envelope every non-2xx response
// from the gateway — and from crowdd's HTTP head — uses:
//
//	{"error":{"code":"rate_limited","message":"..."}}
type ErrorBody struct {
	Error ErrorDetail `json:"error"`
}

// WriteError writes the unified JSON error envelope with the given HTTP
// status. Every error path of the serving layer (crowdgate and the
// crowdd HTTP head) goes through this one function, so clients see
// exactly one error shape.
func WriteError(w http.ResponseWriter, status int, code, message string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	//crowdvet:ignore errclass encoding a flat two-string struct fails only when the client hangs up, which needs no handling
	_ = json.NewEncoder(w).Encode(ErrorBody{Error: ErrorDetail{Code: code, Message: message}})
}
