// Package client is the typed Go client for the crowdgate /v1 API
// (docs/api.md): batch response ingest, worker-quality queries, pool
// review and health, with transparent jittered retries that honor the
// gateway's Retry-After hints.
//
// Retries follow the same discipline as the cluster RPC layer
// (internal/dist): a 429 — rate-limited or shed — is always retried,
// because the gateway rejects before admitting the request, so nothing
// was ingested; network failures and upstream 5xx are retried only on
// idempotent reads, never on ingest, whose delivery state is unknown.
// Backoff doubles from RetryPolicy.Backoff with deterministic jitter in
// [d/2, d] so a fleet of clients never retries in lockstep.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// RetryPolicy bounds the client's retry behavior. The zero value
// disables retries; DefaultRetryPolicy is the deployment starting point.
type RetryPolicy struct {
	// Retries is how many re-attempts follow the first try. 0 disables
	// retrying.
	Retries int
	// Backoff is the base delay before the first retry; each further
	// retry doubles it, capped at MaxBackoff, with deterministic jitter
	// in [d/2, d] (seeded by JitterSeed).
	Backoff time.Duration
	// MaxBackoff caps the doubled delay. 0 means uncapped.
	MaxBackoff time.Duration
	// JitterSeed seeds the deterministic jitter stream; give each client
	// in a fleet a different seed to spread their retries.
	JitterSeed uint64
}

// DefaultRetryPolicy retries three times with 100ms base backoff capped
// at 5s — patient enough to ride out a rate-limit window, bounded
// enough that a dead gateway fails the call in seconds.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{Retries: 3, Backoff: 100 * time.Millisecond, MaxBackoff: 5 * time.Second}
}

// splitmix64 is the 64-bit finalizer behind the jitter stream — the
// same mixer the cluster layer uses for its retry backoff.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// jitter returns a deterministic value in [d/2, d] for the given
// stream key and attempt.
func (p RetryPolicy) jitter(d time.Duration, attempt int, key uint64) time.Duration {
	half := d / 2
	if half <= 0 {
		return d
	}
	j := splitmix64(p.JitterSeed ^ splitmix64(key^uint64(attempt)))
	return half + time.Duration(j%uint64(half+1))
}

// backoff returns the jittered delay before retry attempt (0-based) on
// the stream identified by key.
func (p RetryPolicy) backoff(attempt int, key uint64) time.Duration {
	if p.Backoff <= 0 {
		return 0
	}
	d := p.Backoff
	for i := 0; i < attempt; i++ {
		d *= 2
		if p.MaxBackoff > 0 && d >= p.MaxBackoff {
			d = p.MaxBackoff
			break
		}
	}
	if p.MaxBackoff > 0 && d > p.MaxBackoff {
		d = p.MaxBackoff
	}
	return p.jitter(d, attempt, key)
}

// APIError is a non-2xx gateway response: the HTTP status, the stable
// machine-readable code and human message from the unified error
// envelope, and the parsed Retry-After hint when the gateway sent one.
type APIError struct {
	// Status is the HTTP status code.
	Status int
	// Code is the envelope's stable error code (e.g. "rate_limited",
	// "overloaded", "unauthorized").
	Code string
	// Message is the envelope's human-readable message.
	Message string
	// RetryAfter is the gateway's Retry-After hint, or 0.
	RetryAfter time.Duration
}

// Error renders the failure for logs.
func (e *APIError) Error() string {
	return fmt.Sprintf("gate: %d %s: %s", e.Status, e.Code, e.Message)
}

// Temporary reports whether the error is worth retrying at all: 429
// (rate-limited or shed — the request was never admitted) and upstream
// 5xx failures. Whether the client actually retries also depends on
// the request being idempotent for the 5xx case.
func (e *APIError) Temporary() bool {
	return e.Status == http.StatusTooManyRequests || e.Status >= 500
}

// Client talks to one crowdgate tenant. It is safe for concurrent use.
type Client struct {
	base  string
	token string
	hc    *http.Client
	retry RetryPolicy
}

// New returns a client for the tenant identified by token at the given
// base URL (e.g. "http://gate:8080"), with a 30-second HTTP timeout and
// DefaultRetryPolicy. Adjust with WithHTTPClient and WithRetry.
func New(baseURL, token string) *Client {
	return &Client{
		base:  strings.TrimRight(baseURL, "/"),
		token: token,
		hc:    &http.Client{Timeout: 30 * time.Second},
		retry: DefaultRetryPolicy(),
	}
}

// WithHTTPClient substitutes the underlying HTTP client and returns the
// same Client for chaining.
func (c *Client) WithHTTPClient(hc *http.Client) *Client {
	c.hc = hc
	return c
}

// WithRetry substitutes the retry policy and returns the same Client
// for chaining.
func (c *Client) WithRetry(p RetryPolicy) *Client {
	c.retry = p
	return c
}

// Response is one crowd response for ingest.
type Response struct {
	// Worker is the worker index in the tenant's crowd, 0-based.
	Worker int `json:"worker"`
	// Task is the non-negative task index.
	Task int `json:"task"`
	// Answer is the response class: 1 (yes) or 2 (no).
	Answer int `json:"answer"`
}

// IngestResult reports one ingest batch's outcome.
type IngestResult struct {
	// Ingested responses were recorded.
	Ingested int `json:"ingested"`
	// Rejected responses were turned away because the worker is fired.
	Rejected int `json:"rejected"`
}

// Estimate is a worker error-rate confidence interval.
type Estimate struct {
	// Mean is the point estimate.
	Mean float64 `json:"mean"`
	// Lo and Hi are the interval endpoints.
	Lo float64 `json:"lo"`
	Hi float64 `json:"hi"`
	// Confidence is the interval's confidence level.
	Confidence float64 `json:"confidence"`
}

// Worker is one worker's quality record.
type Worker struct {
	// Worker is the worker index.
	Worker int `json:"worker"`
	// State is "probation", "active" or "fired".
	State string `json:"state"`
	// Responses is the recorded-response count.
	Responses int `json:"responses"`
	// Estimate is the current interval, or nil before enough responses.
	Estimate *Estimate `json:"estimate"`
}

// Decision is one lifecycle decision from a pool review.
type Decision struct {
	// Worker is the worker the decision concerns.
	Worker int `json:"worker"`
	// Action is "no-change", "promote" or "fire".
	Action string `json:"action"`
	// State is the worker's state after the action.
	State string `json:"state"`
	// IntervalLo and IntervalHi are the evidence interval endpoints.
	IntervalLo float64 `json:"interval_lo"`
	IntervalHi float64 `json:"interval_hi"`
	// Reason explains the decision.
	Reason string `json:"reason"`
}

// Health is the gateway liveness body.
type Health struct {
	// Status is "ok".
	Status string `json:"status"`
	// UptimeSeconds is the gateway's uptime.
	UptimeSeconds float64 `json:"uptime_s"`
	// Tenants is the configured tenant count.
	Tenants int `json:"tenants"`
}

// IngestBatch records a batch of responses. It retries after 429 —
// rate-limit or shed responses are issued before admission, so the
// batch was not recorded — but never after a network failure or
// upstream error, whose delivery state is unknown.
func (c *Client) IngestBatch(ctx context.Context, responses []Response) (IngestResult, error) {
	var out IngestResult
	body := struct {
		Responses []Response `json:"responses"`
	}{Responses: responses}
	err := c.do(ctx, http.MethodPost, "/v1/responses:batch", body, &out, false)
	return out, err
}

// WorkerInfo fetches one worker's quality record. Idempotent: retried
// on 429, network failures and upstream errors alike.
func (c *Client) WorkerInfo(ctx context.Context, id int) (Worker, error) {
	var out Worker
	err := c.do(ctx, http.MethodGet, "/v1/workers/"+strconv.Itoa(id), nil, &out, true)
	return out, err
}

// Workers fetches every worker's quality record.
func (c *Client) Workers(ctx context.Context) ([]Worker, error) {
	var out struct {
		Workers []Worker `json:"workers"`
	}
	err := c.do(ctx, http.MethodGet, "/v1/workers", nil, &out, true)
	return out.Workers, err
}

// Review runs one pool lifecycle review and returns the decisions. A
// review is idempotent in effect — re-reviewing unchanged statistics
// re-emits the same decisions — but a lost response leaves applied
// transitions unreported, so like ingest it retries only after 429.
func (c *Client) Review(ctx context.Context) ([]Decision, error) {
	var out struct {
		Decisions []Decision `json:"decisions"`
	}
	err := c.do(ctx, http.MethodPost, "/v1/pool/review", nil, &out, false)
	return out.Decisions, err
}

// Healthz probes gateway liveness (no auth required by the server; the
// client sends its token anyway, harmlessly).
func (c *Client) Healthz(ctx context.Context) (Health, error) {
	var out Health
	err := c.do(ctx, http.MethodGet, "/v1/healthz", nil, &out, true)
	return out, err
}

// do runs one API call with the retry loop. idempotent marks requests
// that may be retried after ambiguous failures (network errors, 5xx);
// 429 is retried regardless, honoring Retry-After.
func (c *Client) do(ctx context.Context, method, path string, in, out any, idempotent bool) error {
	var payload []byte
	if in != nil {
		var err error
		if payload, err = json.Marshal(in); err != nil {
			return fmt.Errorf("client: encoding request: %w", err)
		}
	}
	h := fnv.New64a()
	// Hash writes never fail; key only seeds jitter.
	_, _ = io.WriteString(h, method+" "+path)
	key := h.Sum64()
	var lastErr error
	for attempt := 0; attempt <= c.retry.Retries; attempt++ {
		if attempt > 0 {
			if err := sleepCtx(ctx, c.delay(lastErr, attempt-1, key)); err != nil {
				return err
			}
		}
		var body io.Reader
		if payload != nil {
			body = bytes.NewReader(payload)
		}
		req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
		if err != nil {
			return fmt.Errorf("client: building request: %w", err)
		}
		if payload != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		req.Header.Set("Authorization", "Bearer "+c.token)
		resp, err := c.hc.Do(req)
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			lastErr = fmt.Errorf("client: %s %s: %w", method, path, err)
			if !idempotent {
				return lastErr
			}
			continue
		}
		apiErr := drain(resp, out)
		if apiErr == nil {
			return nil
		}
		lastErr = apiErr
		retryable := apiErr.Status == http.StatusTooManyRequests ||
			(idempotent && apiErr.Temporary())
		if !retryable {
			return apiErr
		}
	}
	return lastErr
}

// delay picks the wait before the next attempt: the gateway's
// Retry-After when the last failure carried one — jittered upward into
// [ra, 1.5*ra] so a shed fleet doesn't return in lockstep the moment
// the hint expires — otherwise the policy's exponential backoff.
func (c *Client) delay(lastErr error, attempt int, key uint64) time.Duration {
	if ae, ok := lastErr.(*APIError); ok && ae.RetryAfter > 0 {
		return ae.RetryAfter + c.retry.jitter(ae.RetryAfter, attempt, key)/2
	}
	return c.retry.backoff(attempt, key)
}

// drain consumes one response: decode out on 2xx, or build the APIError
// from the envelope and Retry-After header.
func drain(resp *http.Response, out any) *APIError {
	defer func() {
		// Draining lets the transport reuse the connection; a failed drain
		// just forfeits reuse.
		_, _ = io.Copy(io.Discard, resp.Body)
		_ = resp.Body.Close()
	}()
	if resp.StatusCode >= 200 && resp.StatusCode < 300 {
		if out == nil {
			return nil
		}
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return &APIError{Status: resp.StatusCode, Code: "bad_body",
				Message: "decoding response: " + err.Error()}
		}
		return nil
	}
	ae := &APIError{Status: resp.StatusCode, Code: "unknown"}
	var envelope struct {
		Error struct {
			Code    string `json:"code"`
			Message string `json:"message"`
		} `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&envelope); err == nil && envelope.Error.Code != "" {
		ae.Code, ae.Message = envelope.Error.Code, envelope.Error.Message
	}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		if secs, err := strconv.Atoi(ra); err == nil && secs > 0 {
			ae.RetryAfter = time.Duration(secs) * time.Second
		}
	}
	return ae
}

// sleepCtx waits d or until ctx is done.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
