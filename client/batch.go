package client

import (
	"context"
	"sync"
)

// maxBatch mirrors the gateway's per-request batch limit; the batcher
// clamps its size to it so a flush is never rejected for being too big.
const maxBatch = 10000

// Batcher accumulates responses and ships them in fixed-size batches —
// the cheap way to feed a streaming source through the batch ingest
// route without one HTTP round-trip per response. It is safe for
// concurrent use; flushes serialize.
type Batcher struct {
	c    *Client
	size int

	mu    sync.Mutex
	buf   []Response
	total IngestResult
}

// NewBatcher returns a batcher flushing through c every size responses
// (clamped to [1, 10000], the gateway's batch limit). Call Flush before
// discarding it: responses below the size threshold sit in the buffer
// until then.
func (c *Client) NewBatcher(size int) *Batcher {
	if size < 1 {
		size = 1
	}
	if size > maxBatch {
		size = maxBatch
	}
	return &Batcher{c: c, size: size, buf: make([]Response, 0, size)}
}

// Add buffers one response, flushing if the buffer reaches the batch
// size. An error is a flush error: the flushed batch's delivery failed
// (the buffer is kept so a later Flush retries it), but r itself was
// buffered either way.
func (b *Batcher) Add(ctx context.Context, r Response) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.buf = append(b.buf, r)
	if len(b.buf) < b.size {
		return nil
	}
	return b.flushLocked(ctx)
}

// Flush ships whatever is buffered. On error the buffer is retained, so
// calling Flush again retries the same batch — safe when the failure
// was a 429 (nothing was admitted), at the caller's discretion after
// ambiguous network failures.
func (b *Batcher) Flush(ctx context.Context) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.flushLocked(ctx)
}

func (b *Batcher) flushLocked(ctx context.Context) error {
	if len(b.buf) == 0 {
		return nil
	}
	res, err := b.c.IngestBatch(ctx, b.buf)
	if err != nil {
		return err
	}
	b.total.Ingested += res.Ingested
	b.total.Rejected += res.Rejected
	b.buf = b.buf[:0]
	return nil
}

// Totals reports the cumulative ingest outcome across every successful
// flush so far.
func (b *Batcher) Totals() IngestResult {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.total
}
