package client_test

import (
	"context"
	"fmt"
	"net/http/httptest"

	"crowdassess/client"
	"crowdassess/internal/gate"
)

// startGateway boots an in-process gateway with one tenant so the
// examples run self-contained under `go test`; against a deployed
// crowdgate only the base URL and token change.
func startGateway() *httptest.Server {
	gw, err := gate.New(gate.Options{Tenants: []gate.TenantConfig{
		{Name: "example", Token: "example-token", Workers: 8},
	}})
	if err != nil {
		panic(err)
	}
	return httptest.NewServer(gw)
}

// Batch ingest: submit crowd responses and read back a worker's
// quality record.
func ExampleClient_IngestBatch() {
	srv := startGateway()
	defer srv.Close()

	c := client.New(srv.URL, "example-token")
	ctx := context.Background()

	res, err := c.IngestBatch(ctx, []client.Response{
		{Worker: 0, Task: 10, Answer: 1},
		{Worker: 1, Task: 10, Answer: 1},
		{Worker: 2, Task: 10, Answer: 2},
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("ingested %d rejected %d\n", res.Ingested, res.Rejected)

	w, err := c.WorkerInfo(ctx, 0)
	if err != nil {
		panic(err)
	}
	fmt.Printf("worker %d: %s, %d responses\n", w.Worker, w.State, w.Responses)
	// Output:
	// ingested 3 rejected 0
	// worker 0: probation, 1 responses
}

// Streaming sources use a Batcher: responses accumulate client-side and
// ship in gateway-sized batches; Flush drains the remainder.
func ExampleBatcher() {
	srv := startGateway()
	defer srv.Close()

	c := client.New(srv.URL, "example-token")
	ctx := context.Background()

	b := c.NewBatcher(2)
	for task := 0; task < 3; task++ {
		if err := b.Add(ctx, client.Response{Worker: 1, Task: task, Answer: 1}); err != nil {
			panic(err)
		}
	}
	if err := b.Flush(ctx); err != nil {
		panic(err)
	}
	fmt.Printf("ingested %d\n", b.Totals().Ingested)
	// Output:
	// ingested 3
}

// Pool review: apply the tenant's hire/fire policy to its current
// statistics. Workers below the policy's MinResponses bar produce no
// decision, so a young crowd reviews to an empty list.
func ExampleClient_Review() {
	srv := startGateway()
	defer srv.Close()

	c := client.New(srv.URL, "example-token")
	ctx := context.Background()

	if _, err := c.IngestBatch(ctx, []client.Response{
		{Worker: 0, Task: 0, Answer: 1},
		{Worker: 1, Task: 0, Answer: 1},
	}); err != nil {
		panic(err)
	}
	decisions, err := c.Review(ctx)
	if err != nil {
		panic(err)
	}
	fmt.Printf("decisions: %d\n", len(decisions))
	// Output:
	// decisions: 0
}
