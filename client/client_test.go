package client_test

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"crowdassess/client"
)

// flakyServer answers the first n requests with the given status (and
// optional Retry-After), then succeeds with the body.
func flakyServer(failures int, status int, retryAfter string, okBody string) (*httptest.Server, *atomic.Int64) {
	var attempts atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := attempts.Add(1)
		if int(n) <= failures {
			if retryAfter != "" {
				w.Header().Set("Retry-After", retryAfter)
			}
			w.WriteHeader(status)
			w.Write([]byte(`{"error":{"code":"rate_limited","message":"slow down"}}`))
			return
		}
		w.Write([]byte(okBody))
	}))
	return srv, &attempts
}

func TestIngestRetriesAfter429HonoringRetryAfter(t *testing.T) {
	srv, attempts := flakyServer(1, http.StatusTooManyRequests, "1", `{"ingested":1,"rejected":0}`)
	defer srv.Close()

	c := client.New(srv.URL, "tok")
	start := time.Now()
	res, err := c.IngestBatch(context.Background(), []client.Response{{Worker: 0, Task: 0, Answer: 1}})
	elapsed := time.Since(start)
	if err != nil {
		t.Fatalf("IngestBatch: %v", err)
	}
	if res.Ingested != 1 {
		t.Errorf("ingested %d, want 1", res.Ingested)
	}
	if got := attempts.Load(); got != 2 {
		t.Errorf("%d attempts, want 2 (one 429, one success)", got)
	}
	// The client must wait at least the advertised Retry-After (jitter
	// only pushes the delay upward, into [ra, 1.5*ra]).
	if elapsed < time.Second {
		t.Errorf("retried after %v, before the 1s Retry-After elapsed", elapsed)
	}
	if elapsed > 3*time.Second {
		t.Errorf("retried after %v, far beyond the 1.5s jitter ceiling", elapsed)
	}
}

func TestIngestNeverRetriesUpstreamErrors(t *testing.T) {
	srv, attempts := flakyServer(10, http.StatusBadGateway, "", `{}`)
	defer srv.Close()

	c := client.New(srv.URL, "tok").WithRetry(client.RetryPolicy{Retries: 3, Backoff: time.Millisecond})
	_, err := c.IngestBatch(context.Background(), []client.Response{{Worker: 0, Task: 0, Answer: 1}})
	var ae *client.APIError
	if !errors.As(err, &ae) || ae.Status != http.StatusBadGateway {
		t.Fatalf("err = %v, want APIError with status 502", err)
	}
	// A 502 on ingest is ambiguous — some of the batch may be recorded —
	// so the client must fail immediately rather than re-send.
	if got := attempts.Load(); got != 1 {
		t.Errorf("%d attempts, want 1 (no retry on non-idempotent upstream failure)", got)
	}
}

func TestIdempotentReadRetriesUpstreamErrors(t *testing.T) {
	srv, attempts := flakyServer(2, http.StatusBadGateway, "",
		`{"worker":0,"state":"probation","responses":0,"estimate":null}`)
	defer srv.Close()

	c := client.New(srv.URL, "tok").WithRetry(client.RetryPolicy{Retries: 3, Backoff: time.Millisecond})
	w, err := c.WorkerInfo(context.Background(), 0)
	if err != nil {
		t.Fatalf("WorkerInfo: %v", err)
	}
	if w.State != "probation" {
		t.Errorf("state %q, want probation", w.State)
	}
	if got := attempts.Load(); got != 3 {
		t.Errorf("%d attempts, want 3 (two 502s retried, then success)", got)
	}
}

func TestRetriesExhaustedSurfacesLastError(t *testing.T) {
	srv, attempts := flakyServer(100, http.StatusTooManyRequests, "", `{}`)
	defer srv.Close()

	c := client.New(srv.URL, "tok").WithRetry(client.RetryPolicy{Retries: 2, Backoff: time.Millisecond})
	_, err := c.IngestBatch(context.Background(), []client.Response{{Worker: 0, Task: 0, Answer: 1}})
	var ae *client.APIError
	if !errors.As(err, &ae) || ae.Status != http.StatusTooManyRequests || ae.Code != "rate_limited" {
		t.Fatalf("err = %v, want the final rate_limited APIError", err)
	}
	if got := attempts.Load(); got != 3 {
		t.Errorf("%d attempts, want 3 (initial + 2 retries)", got)
	}
}

func TestContextCancelsRetryWait(t *testing.T) {
	srv, _ := flakyServer(100, http.StatusTooManyRequests, "5", `{}`)
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	c := client.New(srv.URL, "tok")
	start := time.Now()
	_, err := c.IngestBatch(ctx, []client.Response{{Worker: 0, Task: 0, Answer: 1}})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	// The 5s Retry-After must not pin the caller past its context.
	if waited := time.Since(start); waited > 2*time.Second {
		t.Errorf("cancellation took %v; the retry sleep ignored the context", waited)
	}
}

func TestBatcherFlushesAtSizeAndOnDemand(t *testing.T) {
	var batches atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		batches.Add(1)
		w.Write([]byte(`{"ingested":2,"rejected":0}`))
	}))
	defer srv.Close()

	c := client.New(srv.URL, "tok")
	b := c.NewBatcher(2)
	ctx := context.Background()
	for task := 0; task < 4; task++ {
		if err := b.Add(ctx, client.Response{Worker: 0, Task: task, Answer: 1}); err != nil {
			t.Fatalf("Add: %v", err)
		}
	}
	if err := b.Flush(ctx); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if got := batches.Load(); got != 2 {
		t.Errorf("%d batches shipped, want 2 (size-triggered flushes; final Flush empty)", got)
	}
	if tot := b.Totals(); tot.Ingested != 4 {
		t.Errorf("totals %+v, want 4 ingested", tot)
	}
}
