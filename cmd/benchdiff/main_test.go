package main

import (
	"strings"
	"testing"
	"text/tabwriter"
)

func opts() options { return options{Threshold: 0.30, MinSeconds: 0.01} }

func one(comps []comparison, t *testing.T) comparison {
	t.Helper()
	if len(comps) != 1 {
		t.Fatalf("got %d comparisons, want 1: %+v", len(comps), comps)
	}
	return comps[0]
}

func TestSecondsRegressionTripsGate(t *testing.T) {
	base := []record{{Experiment: "fig3", Seconds: 1.0, GoMaxProcs: 4}}
	slower := []record{{Experiment: "fig3", Seconds: 1.5, GoMaxProcs: 4}}
	c := one(diff(base, slower, opts()), t)
	if !c.Regressed {
		t.Fatalf("50%% slower run passed the 30%% gate: %+v", c)
	}
	// 25% slower is within the 30% throughput-loss budget (1/1.25 = 0.8).
	within := []record{{Experiment: "fig3", Seconds: 1.25, GoMaxProcs: 4}}
	if c := one(diff(base, within, opts()), t); c.Regressed {
		t.Fatalf("25%% slower run failed the 30%% gate: %+v", c)
	}
}

func TestOpsPerSecRegressionTripsGate(t *testing.T) {
	base := []record{{Experiment: "ingest/shards=4", Seconds: 0.5, OpsPerSec: 1e6, GoMaxProcs: 4}}
	slower := []record{{Experiment: "ingest/shards=4", Seconds: 0.5, OpsPerSec: 6.5e5, GoMaxProcs: 4}}
	c := one(diff(base, slower, opts()), t)
	if c.Metric != "ops/sec" {
		t.Fatalf("ops_per_sec records must gate on throughput, got %q", c.Metric)
	}
	if !c.Regressed {
		t.Fatalf("35%% throughput drop passed the gate: %+v", c)
	}
	faster := []record{{Experiment: "ingest/shards=4", Seconds: 0.5, OpsPerSec: 2e6, GoMaxProcs: 4}}
	if c := one(diff(base, faster, opts()), t); c.Regressed {
		t.Fatalf("speedup flagged as regression: %+v", c)
	}
}

func TestHardwareMismatchSkips(t *testing.T) {
	base := []record{{Experiment: "fig3", Seconds: 1.0, GoMaxProcs: 1}}
	cand := []record{{Experiment: "fig3", Seconds: 10.0, GoMaxProcs: 8}}
	c := one(diff(base, cand, opts()), t)
	if c.Skipped == "" || c.Regressed {
		t.Fatalf("cross-hardware records must be skipped, not judged: %+v", c)
	}
	o := opts()
	o.IgnoreHardware = true
	if c := one(diff(base, cand, o), t); !c.Regressed {
		t.Fatalf("-ignore-hardware should compare anyway: %+v", c)
	}
}

func TestTinyTimingsSkipAsNoise(t *testing.T) {
	base := []record{{Experiment: "fig2c", Seconds: 0.002, GoMaxProcs: 4}}
	cand := []record{{Experiment: "fig2c", Seconds: 0.004, GoMaxProcs: 4}}
	c := one(diff(base, cand, opts()), t)
	if c.Skipped == "" {
		t.Fatalf("sub-10ms figure timings must be skipped as noise: %+v", c)
	}
}

func TestDisjointSeriesSkip(t *testing.T) {
	base := []record{{Experiment: "old", Seconds: 1, GoMaxProcs: 4}}
	cand := []record{{Experiment: "new", Seconds: 1, GoMaxProcs: 4}}
	comps := diff(base, cand, opts())
	if len(comps) != 2 || comps[0].Skipped == "" || comps[1].Skipped == "" {
		t.Fatalf("disjoint series must be reported as skips: %+v", comps)
	}
}

// TestInjectedSlowdownFailsIdenticalSeries is the gate's self-test: the CI
// step that runs benchdiff with -inject-slowdown on identical series must
// fail, proving the gate actually bites.
func TestInjectedSlowdownFailsIdenticalSeries(t *testing.T) {
	series := []record{
		{Experiment: "fig3", Seconds: 1.2, GoMaxProcs: 4},
		{Experiment: "ingest/shards=2", Seconds: 0.5, OpsPerSec: 2e6, GoMaxProcs: 4},
	}
	o := opts()
	if comps := diff(series, series, o); len(comps) != 2 {
		t.Fatalf("want 2 comparisons, got %+v", comps)
	} else {
		for _, c := range comps {
			if c.Regressed || c.Skipped != "" {
				t.Fatalf("identical series must pass: %+v", c)
			}
		}
	}
	o.Slowdown = 2
	regressions := 0
	for _, c := range diff(series, series, o) {
		if c.Regressed {
			regressions++
		}
	}
	if regressions != 2 {
		t.Fatalf("injected 2x slowdown tripped %d of 2 comparisons", regressions)
	}
}

func TestReportCounts(t *testing.T) {
	comps := []comparison{
		{Experiment: "a", Metric: "1/seconds", Base: 1, New: 0.5, Delta: -0.5, Regressed: true},
		{Experiment: "b", Metric: "1/seconds", Base: 1, New: 1, Delta: 0},
		{Experiment: "c", Skipped: "not in candidate series"},
	}
	var sb strings.Builder
	w := tabwriter.NewWriter(&sb, 2, 4, 2, ' ', 0)
	regressed, compared := report(w, comps)
	w.Flush()
	if regressed != 1 || compared != 2 {
		t.Fatalf("report counted %d regressed / %d compared, want 1/2", regressed, compared)
	}
	out := sb.String()
	if !strings.Contains(out, "REGRESSED") || !strings.Contains(out, "skipped: not in candidate series") {
		t.Fatalf("report output missing verdicts:\n%s", out)
	}
}
