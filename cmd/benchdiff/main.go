// Command benchdiff is the CI bench-regression gate: it compares a freshly
// regenerated BENCH_*.json series against a baseline series and fails
// (exit 1) when any experiment's throughput regressed beyond the
// threshold.
//
// Usage:
//
//	benchdiff -base baseline/BENCH_2.json -new BENCH_2.json [-threshold 0.30]
//	          [-min-seconds 0.01] [-ignore-hardware] [-inject-slowdown 1.5]
//
// Records match by experiment name. Throughput is ops_per_sec where the
// series carries it (the ingestion and cluster benches) and 1/seconds
// otherwise (the figure runners); either way the gate trips when the
// candidate's throughput falls more than -threshold below the baseline's.
//
// Comparisons only count on comparable hardware: records whose gomaxprocs
// differ are skipped (reported, not failed), because a committed series
// measured on another machine says nothing about a regression on this one.
// CI therefore regenerates the baseline and the candidate in the same job
// on the same runner; -ignore-hardware overrides the check for manual
// cross-machine eyeballing. Figure records faster than -min-seconds on
// both sides are skipped as timer noise.
//
// -inject-slowdown multiplies the candidate's cost by the given factor
// before comparing. It exists to prove the gate works: a CI step runs
// benchdiff against identical series with -inject-slowdown 2 and requires
// the exit code to be nonzero, so a silently broken gate fails the build
// rather than waving regressions through.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"text/tabwriter"
)

// record is the slice of the crowdbench JSON schema the gate reads;
// unknown fields are ignored, so the schema can grow freely.
type record struct {
	Experiment string  `json:"experiment"`
	Seconds    float64 `json:"seconds"`
	OpsPerSec  float64 `json:"ops_per_sec"`
	GoMaxProcs int     `json:"gomaxprocs"`
}

type options struct {
	// Threshold is the fractional throughput loss that fails the gate
	// (0.30 = fail when the candidate is >30% slower).
	Threshold float64
	// MinSeconds skips wall-clock records faster than this on both sides.
	MinSeconds float64
	// IgnoreHardware compares across differing gomaxprocs anyway.
	IgnoreHardware bool
	// Slowdown multiplies the candidate's cost before comparing (gate
	// self-test; 1 = off).
	Slowdown float64
}

// comparison is one experiment's verdict.
type comparison struct {
	Experiment string
	Metric     string  // "ops/sec" or "1/seconds"
	Base, New  float64 // throughput in the metric's unit
	Delta      float64 // fractional throughput change; negative = slower
	Skipped    string  // non-empty reason when not compared
	Regressed  bool
}

// diff matches baseline and candidate records by experiment name and
// scores each comparable pair.
func diff(base, cand []record, opts options) []comparison {
	slowdown := opts.Slowdown
	if slowdown <= 0 {
		slowdown = 1
	}
	candByName := make(map[string]record, len(cand))
	for _, r := range cand {
		candByName[r.Experiment] = r
	}
	var out []comparison
	seen := make(map[string]bool, len(base))
	for _, b := range base {
		seen[b.Experiment] = true
		c := comparison{Experiment: b.Experiment}
		n, ok := candByName[b.Experiment]
		if !ok {
			c.Skipped = "not in candidate series"
			out = append(out, c)
			continue
		}
		if b.GoMaxProcs != n.GoMaxProcs && !opts.IgnoreHardware {
			c.Skipped = fmt.Sprintf("hardware differs (gomaxprocs %d vs %d)", b.GoMaxProcs, n.GoMaxProcs)
			out = append(out, c)
			continue
		}
		switch {
		case b.OpsPerSec > 0 && n.OpsPerSec > 0:
			c.Metric = "ops/sec"
			c.Base, c.New = b.OpsPerSec, n.OpsPerSec/slowdown
		case b.Seconds > 0 && n.Seconds > 0:
			if b.Seconds < opts.MinSeconds && n.Seconds < opts.MinSeconds {
				c.Skipped = fmt.Sprintf("both sides under %v s (timer noise)", opts.MinSeconds)
				out = append(out, c)
				continue
			}
			c.Metric = "1/seconds"
			c.Base, c.New = 1/b.Seconds, 1/(n.Seconds*slowdown)
		default:
			c.Skipped = "no usable metric"
			out = append(out, c)
			continue
		}
		c.Delta = c.New/c.Base - 1
		c.Regressed = c.Delta < -opts.Threshold
		out = append(out, c)
	}
	for _, n := range cand {
		if !seen[n.Experiment] {
			out = append(out, comparison{Experiment: n.Experiment, Skipped: "not in baseline series"})
		}
	}
	return out
}

// report renders the verdict table and returns how many experiments
// regressed and how many were actually compared.
func report(w *tabwriter.Writer, comps []comparison) (regressed, compared int) {
	fmt.Fprintln(w, "experiment\tmetric\tbaseline\tcandidate\tdelta\tverdict")
	for _, c := range comps {
		if c.Skipped != "" {
			fmt.Fprintf(w, "%s\t—\t—\t—\t—\tskipped: %s\n", c.Experiment, c.Skipped)
			continue
		}
		compared++
		verdict := "ok"
		if c.Regressed {
			verdict = "REGRESSED"
			regressed++
		}
		fmt.Fprintf(w, "%s\t%s\t%.4g\t%.4g\t%+.1f%%\t%s\n", c.Experiment, c.Metric, c.Base, c.New, 100*c.Delta, verdict)
	}
	return regressed, compared
}

func readSeries(path string) ([]record, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var records []record
	if err := json.Unmarshal(b, &records); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return records, nil
}

func main() {
	var (
		basePath  = flag.String("base", "", "baseline BENCH_*.json series (required)")
		newPath   = flag.String("new", "", "candidate BENCH_*.json series (required)")
		threshold = flag.Float64("threshold", 0.30, "fractional throughput loss that fails the gate")
		minSec    = flag.Float64("min-seconds", 0.01, "skip wall-clock records faster than this on both sides")
		ignoreHW  = flag.Bool("ignore-hardware", false, "compare records even when gomaxprocs differ")
		slowdown  = flag.Float64("inject-slowdown", 1, "multiply the candidate's cost by this factor (gate self-test)")
	)
	flag.Parse()
	if *basePath == "" || *newPath == "" {
		fmt.Fprintln(os.Stderr, "benchdiff: -base and -new are required")
		flag.Usage()
		os.Exit(2)
	}
	base, err := readSeries(*basePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}
	cand, err := readSeries(*newPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}
	comps := diff(base, cand, options{
		Threshold:      *threshold,
		MinSeconds:     *minSec,
		IgnoreHardware: *ignoreHW,
		Slowdown:       *slowdown,
	})
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	regressed, compared := report(w, comps)
	w.Flush()
	switch {
	case regressed > 0:
		fmt.Printf("benchdiff: FAIL — %d of %d compared experiments regressed more than %.0f%%\n",
			regressed, compared, 100**threshold)
		os.Exit(1)
	case compared == 0:
		fmt.Println("benchdiff: nothing comparable (hardware mismatch or disjoint series); gate passes vacuously")
	default:
		fmt.Printf("benchdiff: ok — %d experiments within %.0f%% of baseline throughput\n", compared, 100**threshold)
	}
}
