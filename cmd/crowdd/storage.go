// Durable-storage flag surface: the legacy single-file CCKP checkpoint
// (-checkpoint) and the WAL storage engine (-wal) are alternatives — the
// former rewrites the full response history every interval, the latter
// journals every acknowledged batch as it lands and cuts O(delta) compact
// snapshots. validateStorage is the one place the combination rules live,
// so both the daemon and its tests agree on what is rejected.
package main

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"crowdassess/internal/dist"
	"crowdassess/internal/obs"
	"crowdassess/internal/store"
)

// storageConfig is the validated persistence configuration for one daemon.
type storageConfig struct {
	// ckpt / ckptEvery: legacy CCKP mode. A snapshot file (worker) or
	// per-slice directory (coordinator), rewritten every interval.
	ckpt      string
	ckptEvery time.Duration
	// wal / fsync / snapEvery: storage-engine mode. A directory holding
	// WAL segments and compact snapshots.
	wal       string
	fsync     store.FsyncPolicy
	snapEvery time.Duration
	// migrate names a legacy CCKP file to load into an empty WAL store
	// once, seeding it with a compact snapshot.
	migrate string
}

// validateStorage checks the persistence flags as a set. The rules:
// -checkpoint and -wal are mutually exclusive (two sources of truth on
// restart would have to be reconciled, and silently preferring one is how
// acked responses get lost); intervals must be positive (-checkpoint-interval
// keeps its documented "0 disables" escape hatch, -snapshot-interval does
// not — a WAL without snapshots grows without bound); -fsync must parse;
// and -migrate-checkpoint only makes sense when a WAL is configured.
func validateStorage(ckpt string, ckptEvery time.Duration, wal, fsyncSpec string, snapEvery time.Duration, migrate string) (storageConfig, error) {
	cfg := storageConfig{ckpt: ckpt, ckptEvery: ckptEvery, wal: wal, snapEvery: snapEvery, migrate: migrate}
	if ckpt != "" && wal != "" {
		return cfg, fmt.Errorf("-checkpoint and -wal are mutually exclusive: pick the legacy snapshot file or the WAL engine (migrate with -migrate-checkpoint)")
	}
	if ckptEvery < 0 {
		return cfg, fmt.Errorf("-checkpoint-interval %v is negative", ckptEvery)
	}
	if wal != "" {
		if snapEvery <= 0 {
			return cfg, fmt.Errorf("-snapshot-interval %v must be positive: without periodic snapshots the WAL grows without bound", snapEvery)
		}
		policy, err := store.ParseFsyncPolicy(fsyncSpec)
		if err != nil {
			return cfg, fmt.Errorf("-fsync: %w", err)
		}
		cfg.fsync = policy
	}
	if migrate != "" && wal == "" {
		return cfg, fmt.Errorf("-migrate-checkpoint requires -wal: the migration target is the WAL store")
	}
	return cfg, nil
}

// openWorkerStore opens the worker's WAL engine, or returns nil when the
// daemon runs without one. A non-nil reg instruments the store's append,
// fsync and snapshot paths.
func (cfg storageConfig) openWorkerStore(reg *obs.Registry) (*store.Store, error) {
	if cfg.wal == "" {
		return nil, nil
	}
	st, err := store.Open(store.OSFS{}, cfg.wal, store.Options{Fsync: cfg.fsync, Obs: reg})
	if err != nil {
		return nil, fmt.Errorf("opening WAL store %s: %w", cfg.wal, err)
	}
	return st, nil
}

// recoverWorker brings a store-backed worker up to date on startup: either
// the ordinary snapshot-plus-tail recovery, or — with -migrate-checkpoint —
// a one-shot load of a legacy CCKP file into an empty store, immediately
// pinned by a compact snapshot so the migrated state is durable before the
// daemon serves. Returns how many responses the worker now holds.
func recoverWorker(worker *dist.Worker, st *store.Store, cfg storageConfig) (int, error) {
	if st == nil {
		return 0, nil
	}
	if cfg.migrate == "" {
		return worker.RecoverFromStore()
	}
	if _, ok, err := st.Snapshots.Latest(); ok || err != nil || st.Log.LastSeq() != 0 {
		return 0, fmt.Errorf("refusing to migrate %s into non-empty WAL store %s: it already holds state (seq %d); recover from the store instead",
			cfg.migrate, cfg.wal, st.Log.LastSeq())
	}
	restored, err := loadCheckpoint(worker, cfg.migrate)
	if err != nil {
		return 0, err
	}
	if restored < 0 {
		return 0, fmt.Errorf("-migrate-checkpoint %s: no such checkpoint", cfg.migrate)
	}
	// The compact snapshot is the migration's commit point: after it the
	// CCKP file is dead weight and the store carries everything.
	if err := worker.CheckpointCompact(); err != nil {
		return 0, fmt.Errorf("persisting migrated state: %w", err)
	}
	return restored, nil
}

// openSliceStores opens (or creates) one WAL engine per task slice under
// wal/slice-NNN for coordinator mode. On any failure the already-open
// stores are closed.
func openSliceStores(wal string, slices int, fsync store.FsyncPolicy, reg *obs.Registry) ([]*store.Store, error) {
	stores := make([]*store.Store, slices)
	for si := range stores {
		dir := filepath.Join(wal, fmt.Sprintf("slice-%03d", si))
		if err := os.MkdirAll(dir, 0o755); err != nil {
			closeStores(stores)
			return nil, err
		}
		st, err := store.Open(store.OSFS{}, dir, store.Options{Fsync: fsync, Obs: reg})
		if err != nil {
			closeStores(stores)
			return nil, fmt.Errorf("opening slice %d WAL store %s: %w", si, dir, err)
		}
		stores[si] = st
	}
	return stores, nil
}

func closeStores(stores []*store.Store) {
	for _, st := range stores {
		if st != nil {
			st.Close()
		}
	}
}
