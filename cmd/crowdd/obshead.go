// The observability head: the daemon-side half of internal/obs. Both
// modes share one metrics registry, serve it as GET /metrics on the
// -health mux in Prometheus text format, answer /healthz with the same
// unified body, and — with -pprof — expose the net/http/pprof profiling
// handlers under /debug/pprof/ on that same mux.
package main

import (
	"encoding/json"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"

	"crowdassess/internal/obs"
)

// newRegistry builds the daemon's metrics registry on the system clock
// and exports process uptime. Every component (worker or coordinator,
// stores, monitor, HTTP head) instruments itself against this one
// registry, so /metrics is the whole daemon on one page.
func newRegistry() *obs.Registry {
	reg := obs.NewRegistry(nil)
	reg.GaugeFunc("process_uptime_seconds",
		"Seconds since the daemon came up.",
		func() float64 { return reg.Uptime().Seconds() })
	return reg
}

// headLogger is the structured access/event logger both modes share.
func headLogger() *slog.Logger {
	return obs.NewLogger(os.Stderr, "crowdd", slog.LevelInfo)
}

// healthzHandler serves the health body both modes agree on:
//
//	{"status":"ok"|"degraded","uptime_s":...}
//
// degraded is nil in worker mode (a worker that answers at all is ok);
// the coordinator passes Degraded, which also keeps its original
// degraded_slices field in the body.
func healthzHandler(reg *obs.Registry, degraded func() []int) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		body := map[string]any{
			"status":   "ok",
			"uptime_s": reg.Uptime().Seconds(),
		}
		if degraded != nil {
			d := degraded()
			if len(d) > 0 {
				body["status"] = "degraded"
			} else {
				d = []int{}
			}
			body["degraded_slices"] = d
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(body)
	}
}

// attachObs mounts the observability surface on the health mux: GET
// /metrics in Prometheus text exposition format and, when pprofOn, the
// pprof handlers. They are mounted explicitly rather than by serving
// http.DefaultServeMux (which the net/http/pprof import populates as a
// side effect), so profiling is reachable only when -pprof asked for it.
func attachObs(mux *http.ServeMux, reg *obs.Registry, pprofOn bool) {
	mux.Handle("/metrics", reg)
	if !pprofOn {
		return
	}
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}
