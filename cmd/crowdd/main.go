// Command crowdd is the distributed crowd-assessment worker daemon. It
// owns a sharded streaming evaluator over the task slice its coordinator
// routes to it, speaks the internal/dist merge/evaluate protocol on a TCP
// listener, and reports health and ingestion statistics over HTTP.
//
// Usage:
//
//	crowdd -listen :7333 -workers 64 [-shards 8] [-health :8333]
//
// -workers is the crowd size (the worker-index space of the responses this
// node ingests); every node of a cluster and its coordinator must agree on
// it, and the protocol handshake enforces that. -shards sets the node's
// local task-stripe count for concurrent ingestion (default GOMAXPROCS).
//
// With -health, the daemon serves:
//
//	GET /healthz — 200 and {"status":"ok"} while serving
//	GET /statsz  — crowd size, shard count, tasks and responses ingested,
//	               live coordinator connections, uptime
//
// On SIGINT/SIGTERM the daemon stops accepting, closes coordinator
// connections after their in-flight request finishes, shuts the health
// endpoint down, and exits 0 — a graceful drain, so a coordinator never
// observes a half-written frame.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"crowdassess/internal/dist"
)

func main() {
	var (
		listen = flag.String("listen", ":7333", "TCP address to serve the dist protocol on")
		nwork  = flag.Int("workers", 0, "crowd size (required; must match the coordinator)")
		shards = flag.Int("shards", 0, "local task-stripe shards for concurrent ingestion (0 = GOMAXPROCS)")
		health = flag.String("health", "", "optional HTTP address for /healthz and /statsz")
	)
	flag.Parse()
	if err := run(*listen, *nwork, *shards, *health); err != nil {
		fmt.Fprintf(os.Stderr, "crowdd: %v\n", err)
		os.Exit(1)
	}
}

func run(listen string, workers, shards int, health string) error {
	if workers == 0 {
		return fmt.Errorf("-workers is required")
	}
	worker, err := dist.NewWorker(dist.WorkerOptions{Workers: workers, Shards: shards})
	if err != nil {
		return err
	}
	l, err := net.Listen("tcp", listen)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "crowdd: serving %d-worker crowd on %s\n", workers, l.Addr())

	var healthSrv *http.Server
	if health != "" {
		mux := http.NewServeMux()
		mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			json.NewEncoder(w).Encode(map[string]string{"status": "ok"})
		})
		mux.HandleFunc("/statsz", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			json.NewEncoder(w).Encode(worker.Stats())
		})
		healthSrv = &http.Server{Addr: health, Handler: mux}
		go func() {
			if err := healthSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				fmt.Fprintf(os.Stderr, "crowdd: health endpoint: %v\n", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "crowdd: health endpoint on %s\n", health)
	}

	// Serve until a shutdown signal, then drain gracefully.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	serveErr := make(chan error, 1)
	go func() { serveErr <- worker.Serve(l) }()

	select {
	case err := <-serveErr:
		worker.Close()
		shutdownHealth(healthSrv)
		return err
	case <-ctx.Done():
	}
	stats := worker.Stats()
	fmt.Fprintf(os.Stderr, "crowdd: shutting down after %v (%d responses over %d tasks)\n",
		stats.Uptime.Round(time.Millisecond), stats.Responses, stats.Tasks)
	worker.Close() // stops the listener; Serve returns nil on graceful close
	shutdownHealth(healthSrv)
	return <-serveErr
}

func shutdownHealth(srv *http.Server) {
	if srv == nil {
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	srv.Shutdown(ctx)
}
