// Command crowdd is the distributed crowd-assessment worker daemon. It
// owns a sharded streaming evaluator over the task slice its coordinator
// routes to it, speaks the internal/dist merge/evaluate protocol on a TCP
// listener, and reports health and ingestion statistics over HTTP.
//
// Usage:
//
//	crowdd -listen :7333 -workers 64 [-shards 8] [-health :8333]
//	       [-checkpoint /var/lib/crowdd/node.ckpt] [-checkpoint-interval 1m]
//	       [-rpc-timeout 30s]
//
// With -coordinate, crowdd runs as the cluster head instead of a worker
// (see coordinator.go): it dials the listed replica groups, runs the
// heartbeat monitor with -heartbeat-interval, bounds every cluster RPC by
// -rpc-timeout, and serves an HTTP ingestion/evaluation/membership API on
// -health. In that mode -checkpoint names a directory of per-slice
// snapshots (slice-NNN.ckpt), the same files the monitor's auto-reseed
// falls back to.
//
// -workers is the crowd size (the worker-index space of the responses this
// node ingests); every node of a cluster and its coordinator must agree on
// it, and the protocol handshake enforces that. -shards sets the node's
// local task-stripe count for concurrent ingestion (default GOMAXPROCS).
//
// Two persistence modes exist, mutually exclusive:
//
// With -checkpoint (legacy), the daemon is restartable without losing its
// task slice: the snapshot file is reloaded on start (a missing file is a
// fresh start; a corrupt one refuses to start rather than serve skewed
// statistics), rewritten atomically every -checkpoint-interval, and
// written one final time during graceful shutdown — after the listener has
// drained, so the snapshot captures every acknowledged response. Writes go
// through a temp file and rename; a crash mid-write never truncates the
// previous checkpoint.
//
// With -wal DIR, the daemon runs the storage engine: every acknowledged
// ingest batch is journaled to a CRC-framed write-ahead log before the ack
// goes out (durability per -fsync: always, interval, or never), and every
// -snapshot-interval a compact O(delta) snapshot is cut and the journal
// truncated behind it. On startup the engine recovers from the newest
// valid snapshot plus the WAL tail, truncating at the first torn record —
// a crash (even a power cut, under -fsync always) loses no acked batch.
// A one-shot -migrate-checkpoint FILE loads a legacy CCKP snapshot into an
// empty WAL store and pins it with a compact snapshot. In -coordinate
// mode, -wal journals per task slice (DIR/slice-NNN) on the coordinator
// side, and the monitor's auto-reseed rebuilds a fully-dead slice from its
// slice store instead of a legacy checkpoint.
//
// With -health, the daemon serves (both modes):
//
//	GET /healthz — 200 and {"status":"ok"|"degraded","uptime_s":...}
//	GET /statsz  — crowd size, shard count, tasks and responses ingested,
//	               live coordinator connections, uptime
//	GET /metrics — the full metrics registry in Prometheus text format:
//	               RPC and WAL latency histograms, membership gauges,
//	               ingest counters
//
// and, with -pprof, the net/http/pprof profiling handlers under
// /debug/pprof/ on the same address.
//
// On SIGINT/SIGTERM the daemon stops accepting, closes coordinator
// connections after their in-flight request finishes, writes the final
// checkpoint, shuts the health endpoint down, and exits 0 — a graceful
// drain, so a coordinator never observes a half-written frame.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io/fs"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"crowdassess/internal/dist"
	"crowdassess/internal/obs"
)

func main() {
	var (
		listen     = flag.String("listen", ":7333", "TCP address to serve the dist protocol on")
		nwork      = flag.Int("workers", 0, "crowd size (required; must match the coordinator)")
		shards     = flag.Int("shards", 0, "local task-stripe shards for concurrent ingestion (0 = GOMAXPROCS)")
		health     = flag.String("health", "", "optional HTTP address for /healthz and /statsz (required in -coordinate mode)")
		ckpt       = flag.String("checkpoint", "", "legacy snapshot file (worker) or per-slice snapshot directory (-coordinate): reloaded on start, rewritten atomically on shutdown and every -checkpoint-interval; mutually exclusive with -wal")
		ckptEvery  = flag.Duration("checkpoint-interval", time.Minute, "how often to rewrite the -checkpoint snapshot (0 disables periodic writes)")
		wal        = flag.String("wal", "", "WAL storage-engine directory: acked ingest batches are journaled before the ack and compacted into O(delta) snapshots every -snapshot-interval; mutually exclusive with -checkpoint")
		fsyncSpec  = flag.String("fsync", "always", "WAL append durability: always (fsync per record), interval (group commit), never")
		snapEvery  = flag.Duration("snapshot-interval", time.Minute, "how often to cut a compact WAL snapshot and truncate the journal behind it (-wal mode; must be positive)")
		migrate    = flag.String("migrate-checkpoint", "", "one-shot migration: load this legacy -checkpoint file into an empty -wal store on startup (worker mode)")
		coordinate = flag.String("coordinate", "", `run as cluster head over these replica groups ("a,b;c,d": ';' separates task slices, ',' a slice's replicas)`)
		rpcTimeout = flag.Duration("rpc-timeout", 0, "per-RPC stall budget: mid-frame deadline as a worker, cluster RPC timeout as a coordinator (0 = defaults)")
		hbInterval = flag.Duration("heartbeat-interval", dist.DefaultHeartbeatInterval, "coordinator heartbeat probe interval (-coordinate mode)")
		pprofOn    = flag.Bool("pprof", false, "expose net/http/pprof profiling handlers under /debug/pprof/ on the -health address")
	)
	flag.Parse()
	err := validateTimeouts(*rpcTimeout, *hbInterval)
	var cfg storageConfig
	if err == nil {
		cfg, err = validateStorage(*ckpt, *ckptEvery, *wal, *fsyncSpec, *snapEvery, *migrate)
	}
	if err == nil {
		if *coordinate != "" {
			err = coordinatorMain(*coordinate, *nwork, *health, *rpcTimeout, *hbInterval, cfg, *pprofOn)
		} else {
			err = run(*listen, *nwork, *shards, *health, cfg, *rpcTimeout, *pprofOn)
		}
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "crowdd: %v\n", err)
		os.Exit(1)
	}
}

// validateTimeouts rejects nonsensical duration flags up front, naming
// the offending flag, instead of letting a negative timeout be silently
// ignored (the old -rpc-timeout behavior) or a zero interval be silently
// replaced by a default the operator never asked for.
func validateTimeouts(rpcTimeout, hbInterval time.Duration) error {
	if rpcTimeout < 0 {
		return fmt.Errorf("-rpc-timeout must not be negative (0 means defaults), got %v", rpcTimeout)
	}
	if hbInterval <= 0 {
		return fmt.Errorf("-heartbeat-interval must be positive, got %v", hbInterval)
	}
	return nil
}

// coordinatorMain maps the flag surface onto runCoordinator: -rpc-timeout
// bounds every cluster RPC, -heartbeat-interval paces the failure
// detector, and SIGINT/SIGTERM drive the graceful drain.
func coordinatorMain(spec string, workers int, health string, rpcTimeout, hbInterval time.Duration, cfg storageConfig, pprofOn bool) error {
	policy := dist.DefaultPolicy()
	if rpcTimeout > 0 {
		policy.RPCTimeout = rpcTimeout
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	return runCoordinator(spec, workers, health, policy, dist.MonitorOptions{Interval: hbInterval}, cfg, pprofOn, ctx.Done())
}

// loadCheckpoint restores the worker from a snapshot file. A missing file
// is a fresh start (-1); a corrupt or inconsistent one is a hard error —
// serving with silently lost statistics would poison every merge.
func loadCheckpoint(worker *dist.Worker, path string) (int, error) {
	snap, err := dist.ReadSnapshot(path)
	if errors.Is(err, fs.ErrNotExist) {
		return -1, nil
	}
	if err != nil {
		return 0, err
	}
	if err := worker.Restore(snap); err != nil {
		return 0, fmt.Errorf("restoring checkpoint %s: %w", path, err)
	}
	return snap.Stats.Responses, nil
}

// saveCheckpoint snapshots the worker (a consistent cut, safe under live
// ingestion) and writes it atomically.
func saveCheckpoint(worker *dist.Worker, path string) error {
	return dist.WriteSnapshot(path, worker.Snapshot())
}

func run(listen string, workers, shards int, health string, cfg storageConfig, rpcTimeout time.Duration, pprofOn bool) error {
	if workers == 0 {
		return fmt.Errorf("-workers is required")
	}
	reg := newRegistry()
	st, err := cfg.openWorkerStore(reg)
	if err != nil {
		return err
	}
	if st != nil {
		defer st.Close()
	}
	worker, err := dist.NewWorker(dist.WorkerOptions{Workers: workers, Shards: shards, Name: listen, FrameTimeout: rpcTimeout, Store: st})
	if err != nil {
		return err
	}
	worker.Instrument(reg)
	if st != nil {
		recovered, err := recoverWorker(worker, st, cfg)
		if err != nil {
			return err
		}
		if cfg.migrate != "" {
			fmt.Fprintf(os.Stderr, "crowdd: migrated %d responses from %s into WAL store %s\n", recovered, cfg.migrate, cfg.wal)
		} else if recovered > 0 {
			fmt.Fprintf(os.Stderr, "crowdd: recovered %d responses from WAL store %s\n", recovered, cfg.wal)
		}
	} else if cfg.ckpt != "" {
		restored, err := loadCheckpoint(worker, cfg.ckpt)
		if err != nil {
			return err
		}
		if restored >= 0 {
			fmt.Fprintf(os.Stderr, "crowdd: restored %d responses from %s\n", restored, cfg.ckpt)
		}
	}
	l, err := net.Listen("tcp", listen)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "crowdd: serving %d-worker crowd on %s\n", workers, l.Addr())

	var healthSrv *http.Server
	if health != "" {
		mux := http.NewServeMux()
		mux.HandleFunc("/healthz", healthzHandler(reg, nil))
		// /statsz reads the same gauges /metrics scrapes — one source of
		// truth — rather than a hand-rolled stats struct.
		mux.HandleFunc("/statsz", func(w http.ResponseWriter, r *http.Request) {
			gauge := func(name string) float64 { v, _ := reg.GaugeValue(name); return v }
			w.Header().Set("Content-Type", "application/json")
			json.NewEncoder(w).Encode(map[string]any{
				"workers":     workers,
				"shards":      int(gauge("worker_shards")),
				"tasks":       int(gauge("worker_tasks")),
				"responses":   int(gauge("worker_responses")),
				"connections": int(gauge("worker_connections")),
				"uptime_s":    reg.Uptime().Seconds(),
			})
		})
		attachObs(mux, reg, pprofOn)
		healthSrv = &http.Server{Addr: health, Handler: obs.HTTPMiddleware(mux, headLogger(), reg, listen)}
		go func() {
			if err := healthSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				fmt.Fprintf(os.Stderr, "crowdd: health endpoint: %v\n", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "crowdd: health endpoint on %s\n", health)
	}

	// Periodic persistence while serving; the final authoritative write
	// happens after the drain below. WAL mode cuts compact snapshots
	// (O(delta): the journal is already durable, the snapshot just lets it
	// be truncated); legacy mode rewrites the full CCKP file.
	persist, persistEvery := func() error { return nil }, time.Duration(0)
	switch {
	case st != nil:
		persist, persistEvery = worker.CheckpointCompact, cfg.snapEvery
	case cfg.ckpt != "" && cfg.ckptEvery > 0:
		persist, persistEvery = func() error { return saveCheckpoint(worker, cfg.ckpt) }, cfg.ckptEvery
	}
	stopTicker := make(chan struct{})
	tickerDone := make(chan struct{})
	if persistEvery > 0 {
		go func() {
			defer close(tickerDone)
			tick := time.NewTicker(persistEvery)
			defer tick.Stop()
			for {
				select {
				case <-tick.C:
					if err := persist(); err != nil {
						fmt.Fprintf(os.Stderr, "crowdd: checkpoint: %v\n", err)
					}
				case <-stopTicker:
					return
				}
			}
		}()
	} else {
		close(tickerDone)
	}

	// Serve until a shutdown signal, then drain gracefully.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	serveErr := make(chan error, 1)
	go func() { serveErr <- worker.Serve(l) }()

	// shutdown drains connections, writes the final checkpoint from the
	// quiescent state, and tears the health endpoint down.
	shutdown := func() error {
		close(stopTicker)
		<-tickerDone
		worker.Close() // stops the listener; Serve returns nil on graceful close
		var err error
		switch {
		case st != nil:
			// Every acked batch is already in the WAL; the final compact
			// snapshot just makes the next startup's replay trivial.
			if err = worker.CheckpointCompact(); err != nil {
				err = fmt.Errorf("final compact snapshot: %w", err)
			}
		case cfg.ckpt != "":
			if err = saveCheckpoint(worker, cfg.ckpt); err != nil {
				err = fmt.Errorf("final checkpoint: %w", err)
			}
		}
		shutdownHealth(healthSrv)
		return err
	}

	select {
	case err := <-serveErr:
		if ckptErr := shutdown(); err == nil {
			err = ckptErr
		}
		return err
	case <-ctx.Done():
	}
	stats := worker.Stats()
	fmt.Fprintf(os.Stderr, "crowdd: shutting down after %v (%d responses over %d tasks)\n",
		stats.Uptime.Round(time.Millisecond), stats.Responses, stats.Tasks)
	err = shutdown()
	if serveRes := <-serveErr; err == nil {
		err = serveRes
	}
	return err
}

func shutdownHealth(srv *http.Server) {
	if srv == nil {
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	srv.Shutdown(ctx)
}
