package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"crowdassess/internal/dist"
	"crowdassess/internal/pool"
)

func TestParseGroups(t *testing.T) {
	got, err := parseGroups(" a:1 ,b:2; c:3 ")
	if err != nil {
		t.Fatal(err)
	}
	want := [][]string{{"a:1", "b:2"}, {"c:3"}}
	if len(got) != len(want) {
		t.Fatalf("groups = %v, want %v", got, want)
	}
	for i := range want {
		if len(got[i]) != len(want[i]) {
			t.Fatalf("groups = %v, want %v", got, want)
		}
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("groups = %v, want %v", got, want)
			}
		}
	}
	for _, bad := range []string{"", "a,;b", "a;;b", "a,,b", " ; "} {
		if _, err := parseGroups(bad); err == nil {
			t.Errorf("parseGroups(%q) accepted a malformed spec", bad)
		}
	}
}

// serveClusterWorker runs a real worker on a loopback TCP listener for the
// coordinator-mode tests.
func serveClusterWorker(t *testing.T, crowdSize int, name string) string {
	t.Helper()
	w, err := dist.NewWorker(dist.WorkerOptions{Workers: crowdSize, Shards: 2, Name: name})
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go w.Serve(l)
	t.Cleanup(func() { w.Close() })
	return l.Addr().String()
}

// TestCoordinatorMux drives the cluster head's HTTP surface against a real
// 1-slice × 2-replica TCP cluster: ingest, stats with membership, health,
// evaluation.
func TestCoordinatorMux(t *testing.T) {
	const crowdSize = 5
	a := serveClusterWorker(t, crowdSize, "replica-a")
	b := serveClusterWorker(t, crowdSize, "replica-b")

	coord, err := buildCluster(crowdSize, [][]string{{a, b}}, dist.DefaultPolicy())
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	reg := newRegistry()
	coord.Instrument(reg)
	ce := dist.NewClusterEvaluator(coord, 0)
	mgr, err := pool.NewManagerWith(ce, pool.DefaultPolicy())
	if err != nil {
		t.Fatal(err)
	}
	mgr.Instrument(reg)
	srv := httptest.NewServer(newCoordinatorMux(coord, mgr, ce, reg, false))
	defer srv.Close()

	var recs []ingestRec
	for task := 0; task < 30; task++ {
		for w := 0; w < crowdSize; w++ {
			recs = append(recs, ingestRec{Worker: w, Task: task, Answer: 1 + crowdassessResponse(w, task)})
		}
	}
	body, _ := json.Marshal(recs)
	resp, err := http.Post(srv.URL+"/ingest", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var ingested struct {
		Ingested int `json:"ingested"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&ingested); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || ingested.Ingested != len(recs) {
		t.Fatalf("POST /ingest: status %d ingested %d, want 200 / %d", resp.StatusCode, ingested.Ingested, len(recs))
	}

	// Malformed JSON is the client's fault, not the cluster's.
	resp, err = http.Post(srv.URL+"/ingest", "application/json", bytes.NewReader([]byte("{not json")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("POST /ingest with garbage: status %d, want 400", resp.StatusCode)
	}

	resp, err = http.Get(srv.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	var stats struct {
		Workers    int          `json:"workers"`
		Slices     int          `json:"slices"`
		Responses  int          `json:"responses"`
		Membership []memberView `json:"membership"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if stats.Workers != crowdSize || stats.Slices != 1 || stats.Responses != len(recs) {
		t.Fatalf("/statsz = %+v, want workers=%d slices=1 responses=%d", stats, crowdSize, len(recs))
	}
	if len(stats.Membership) != 2 {
		t.Fatalf("/statsz membership has %d rows, want 2", len(stats.Membership))
	}
	for _, m := range stats.Membership {
		if m.State != "alive" {
			t.Errorf("replica %d state %q, want alive", m.Replica, m.State)
		}
		if m.LastBeatAgeMS < 0 {
			t.Errorf("replica %d heartbeat age %dms is negative", m.Replica, m.LastBeatAgeMS)
		}
	}

	resp, err = http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var hz struct {
		Status string `json:"status"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&hz); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if hz.Status != "ok" {
		t.Fatalf("/healthz status %q, want ok", hz.Status)
	}

	// The same mux serves the Prometheus exposition, and the traffic above
	// must already have left its mark: RPC latency samples from the ingest
	// fan-out and a state gauge per replica slot.
	resp, err = http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	exposition, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("/metrics Content-Type = %q, want text exposition", ct)
	}
	for _, want := range []string{
		`dist_rpc_seconds_count{msg="ingest"}`,
		`monitor_replica_state{replica="0",slice="0"}`,
		`monitor_replica_state{replica="1",slice="0"}`,
		`pool_workers{state="probation"}`,
		"process_uptime_seconds",
	} {
		if !strings.Contains(string(exposition), want) {
			t.Errorf("/metrics is missing %q", want)
		}
	}

	resp, err = http.Get(srv.URL + "/evaluate?confidence=0.9")
	if err != nil {
		t.Fatal(err)
	}
	var eval struct {
		Confidence float64           `json:"confidence"`
		Stale      bool              `json:"stale"`
		Estimates  []json.RawMessage `json:"estimates"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&eval); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || eval.Confidence != 0.9 || eval.Stale || len(eval.Estimates) != crowdSize {
		t.Fatalf("/evaluate: status %d %+v, want 200, confidence 0.9, fresh, %d estimates", resp.StatusCode, eval, crowdSize)
	}

	// One lifecycle review over the merged statistics: every worker has 30
	// responses (past MinResponses), so every one gets a decision, and the
	// review shows up in the pool counters.
	resp, err = http.Post(srv.URL+"/review", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	var review struct {
		Decisions []decisionView `json:"decisions"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&review); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || len(review.Decisions) != crowdSize {
		t.Fatalf("/review: status %d, %d decisions, want 200 with %d", resp.StatusCode, len(review.Decisions), crowdSize)
	}
	if v, ok := reg.CounterValue("pool_reviews_total"); !ok || v != 1 {
		t.Errorf("pool_reviews_total = %d (ok=%v), want 1", v, ok)
	}
}

// TestRunCoordinatorLifecycle runs coordinator-mode main end to end: serve
// the HTTP head, answer health checks, then drain on the done signal and
// leave a final per-slice checkpoint behind.
func TestRunCoordinatorLifecycle(t *testing.T) {
	const crowdSize = 5
	addr := serveClusterWorker(t, crowdSize, "solo")

	// Reserve a loopback port for the coordinator's HTTP head.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	healthAddr := l.Addr().String()
	l.Close()

	ckptDir := t.TempDir()
	done := make(chan struct{})
	runErr := make(chan error, 1)
	go func() {
		runErr <- runCoordinator(addr, crowdSize, healthAddr, dist.DefaultPolicy(),
			dist.MonitorOptions{Interval: 50 * time.Millisecond}, storageConfig{ckpt: ckptDir}, false, done)
	}()

	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(fmt.Sprintf("http://%s/healthz", healthAddr))
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("coordinator health endpoint never came up: %v", err)
		}
		time.Sleep(20 * time.Millisecond)
	}

	close(done)
	if err := <-runErr; err != nil {
		t.Fatalf("runCoordinator: %v", err)
	}
	if _, err := dist.ReadSnapshot(filepath.Join(ckptDir, "slice-000.ckpt")); err != nil {
		t.Fatalf("final cluster checkpoint missing or invalid: %v", err)
	}
}

func TestRunCoordinatorRejectsBadFlags(t *testing.T) {
	if err := runCoordinator("a", 0, ":0", dist.DefaultPolicy(), dist.MonitorOptions{}, storageConfig{}, false, nil); err == nil {
		t.Fatal("missing -workers accepted")
	}
	if err := runCoordinator("a", 5, "", dist.DefaultPolicy(), dist.MonitorOptions{}, storageConfig{}, false, nil); err == nil {
		t.Fatal("missing -health accepted")
	}
	if err := runCoordinator("", 5, ":0", dist.DefaultPolicy(), dist.MonitorOptions{}, storageConfig{}, false, nil); err == nil {
		t.Fatal("empty -coordinate spec accepted")
	}
}
