// Coordinator mode: `crowdd -coordinate "a:7333,b:7333;c:7333,d:7333"`
// runs the daemon as a cluster head instead of a worker node. It dials
// every replica of every slice (';' separates slices, ',' separates a
// slice's replicas), runs the self-healing monitor over them, and serves a
// small HTTP API for ingestion, evaluation and operations.
//
// Exactly one coordinator may own a cluster at a time: replica lockstep —
// what makes the cross-replica divergence check sound — is enforced by the
// coordinator's per-slice serialization, which a second coordinator would
// bypass.
package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"crowdassess/internal/core"
	"crowdassess/internal/crowd"
	"crowdassess/internal/dist"
	"crowdassess/internal/gate"
	"crowdassess/internal/obs"
	"crowdassess/internal/pool"
	"crowdassess/internal/store"
)

// parseGroups splits a -coordinate spec into replica address groups:
// "a,b;c,d" → [[a b] [c d]]. Whitespace around addresses is ignored;
// empty slices or addresses are rejected.
func parseGroups(spec string) ([][]string, error) {
	var groups [][]string
	for _, g := range strings.Split(spec, ";") {
		if strings.TrimSpace(g) == "" {
			return nil, fmt.Errorf("empty replica group in -coordinate %q", spec)
		}
		var reps []string
		for _, a := range strings.Split(g, ",") {
			a = strings.TrimSpace(a)
			if a == "" {
				return nil, fmt.Errorf("empty replica address in -coordinate %q", spec)
			}
			reps = append(reps, a)
		}
		groups = append(groups, reps)
	}
	if len(groups) == 0 {
		return nil, fmt.Errorf("-coordinate needs at least one replica group")
	}
	return groups, nil
}

// buildCluster dials every replica address and assembles the coordinator,
// wiring each slot's dialer so retries and the monitor's reseed loop can
// reconnect to (a replacement at) the same address.
func buildCluster(workers int, groups [][]string, policy dist.Policy) (*dist.Coordinator, error) {
	specs := make([][]dist.ReplicaSpec, len(groups))
	var open []*dist.Conn
	fail := func(err error) (*dist.Coordinator, error) {
		for _, c := range open {
			c.Close()
		}
		return nil, err
	}
	for si, g := range groups {
		for _, addr := range g {
			conn, err := dist.DialTCPTimeout(addr, policy.DialTimeout)
			if err != nil {
				return fail(err)
			}
			open = append(open, conn)
			specs[si] = append(specs[si], dist.ReplicaSpec{
				Conn: conn,
				Dial: func() (*dist.Conn, error) { return dist.DialTCPTimeout(addr, policy.DialTimeout) },
			})
		}
	}
	// NewCluster takes ownership of every connection from here on.
	return dist.NewCluster(workers, specs, policy)
}

// memberView is one membership row as the HTTP endpoints render it: the
// detector state plus a human-grade heartbeat age.
type memberView struct {
	dist.ReplicaHealth
	LastBeatAgeMS int64 `json:"last_beat_age_ms"`
}

func membershipView(coord *dist.Coordinator, now time.Time) []memberView {
	rows := coord.Membership()
	out := make([]memberView, len(rows))
	for i, r := range rows {
		out[i] = memberView{ReplicaHealth: r, LastBeatAgeMS: now.Sub(r.LastBeat).Milliseconds()}
	}
	return out
}

// ingestRec is the JSON shape of one response on POST /ingest.
type ingestRec struct {
	Worker int `json:"worker"`
	Task   int `json:"task"`
	Answer int `json:"answer"`
}

// decisionView is one pool lifecycle decision as POST /review renders it.
type decisionView struct {
	Worker     int     `json:"worker"`
	Action     string  `json:"action"`
	State      string  `json:"state"`
	IntervalLo float64 `json:"interval_lo"`
	IntervalHi float64 `json:"interval_hi"`
	Reason     string  `json:"reason"`
}

// newCoordinatorMux builds the coordinator head's HTTP surface:
//
//	GET  /healthz  — "ok" while every slice serves live, "degraded" when
//	                 any slice is on cached statistics; includes uptime_s
//	GET  /statsz   — cluster shape, response totals, per-replica
//	                 membership (state, heartbeat age, reseed count)
//	GET  /metrics  — the registry in Prometheus text format
//	POST /ingest   — JSON array of {worker, task, answer}; responses from
//	                 fired workers are rejected, not forwarded
//	POST /review   — run one pool lifecycle review over the cluster's
//	                 merged statistics and return the decisions
//	GET  /evaluate — merged intervals; ?confidence=0.9
//
// Ingestion routes through a pool.Manager over the cluster evaluator, so
// the coordinator applies the paper's hiring lifecycle (probation →
// active → fired) to the crowd it fronts; /review is how an operator (or
// a cron) turns accumulated evidence into decisions.
func newCoordinatorMux(coord *dist.Coordinator, mgr *pool.Manager, ce *dist.ClusterEvaluator, reg *obs.Registry, pprofOn bool) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", healthzHandler(reg, coord.Degraded))
	attachObs(mux, reg, pprofOn)
	mux.HandleFunc("/statsz", func(w http.ResponseWriter, r *http.Request) {
		tasks, _ := coord.Tasks()
		responses, _ := coord.Responses()
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]any{
			"workers":         coord.Workers(),
			"slices":          coord.Slices(),
			"live_nodes":      coord.Nodes(),
			"tasks":           tasks,
			"responses":       responses,
			"degraded_slices": coord.Degraded(),
			"membership":      membershipView(coord, time.Now()),
			"uptime_s":        reg.Uptime().Seconds(),
		})
	})
	// Error responses use the same {"error":{"code","message"}} envelope
	// as crowdgate's /v1 API (gate.WriteError), so a client sees one
	// error shape whether it talks to the gateway or this head directly.
	mux.HandleFunc("/ingest", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			gate.WriteError(w, http.StatusMethodNotAllowed, gate.CodeMethodNotAllowed, "/ingest requires POST")
			return
		}
		var recs []ingestRec
		if err := json.NewDecoder(r.Body).Decode(&recs); err != nil {
			gate.WriteError(w, http.StatusBadRequest, gate.CodeBadRequest, "decoding body: "+err.Error())
			return
		}
		// Records go through the pool manager so fired workers are turned
		// away at the door; the adapter batches them into cluster ingest
		// frames, and the explicit flush below both surfaces remote
		// rejections on this request and makes the batch visible to the
		// /statsz and /evaluate that follow the ack.
		rejected := 0
		for _, rec := range recs {
			err := mgr.Record(rec.Worker, rec.Task, crowd.Response(rec.Answer))
			switch {
			case errors.Is(err, pool.ErrFired):
				rejected++
			case err != nil:
				gate.WriteError(w, http.StatusBadRequest, gate.CodeBadRequest, err.Error())
				return
			}
		}
		if err := ce.Flush(); err != nil {
			status, code := http.StatusBadGateway, gate.CodeUpstream
			var re *dist.RemoteError
			if errors.As(err, &re) {
				status, code = http.StatusBadRequest, gate.CodeBadRequest // the batch, not the cluster
			}
			gate.WriteError(w, status, code, err.Error())
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]int{"ingested": len(recs) - rejected, "rejected": rejected})
	})
	mux.HandleFunc("/review", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			gate.WriteError(w, http.StatusMethodNotAllowed, gate.CodeMethodNotAllowed, "/review requires POST")
			return
		}
		decisions, err := mgr.Review()
		if err != nil {
			gate.WriteError(w, http.StatusBadGateway, gate.CodeUpstream, err.Error())
			return
		}
		views := make([]decisionView, len(decisions))
		for i, d := range decisions {
			views[i] = decisionView{
				Worker: d.Worker, Action: d.Action.String(), State: d.State.String(),
				IntervalLo: d.Interval.Lo, IntervalHi: d.Interval.Hi, Reason: d.Reason,
			}
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]any{"decisions": views})
	})
	mux.HandleFunc("/evaluate", func(w http.ResponseWriter, r *http.Request) {
		confidence := 0.95
		if s := r.URL.Query().Get("confidence"); s != "" {
			v, err := strconv.ParseFloat(s, 64)
			if err != nil {
				gate.WriteError(w, http.StatusBadRequest, gate.CodeBadRequest, "bad confidence: "+err.Error())
				return
			}
			confidence = v
		}
		ests, err := coord.EvaluateAll(core.EvalOptions{Confidence: confidence})
		if err != nil {
			gate.WriteError(w, http.StatusBadGateway, gate.CodeUpstream, err.Error())
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]any{
			"confidence": confidence,
			"stale":      len(coord.Degraded()) > 0,
			"estimates":  ests,
		})
	})
	return mux
}

// runCoordinator is coordinator-mode main: dial the cluster, start the
// self-healing monitor, serve the HTTP head, checkpoint periodically, and
// drain on signal.
func runCoordinator(spec string, workers int, health string, policy dist.Policy, mon dist.MonitorOptions, cfg storageConfig, pprofOn bool, done <-chan struct{}) error {
	if workers == 0 {
		return fmt.Errorf("-workers is required")
	}
	if health == "" {
		return fmt.Errorf("-coordinate requires -health (the coordinator's HTTP API address)")
	}
	groups, err := parseGroups(spec)
	if err != nil {
		return err
	}
	coord, err := buildCluster(workers, groups, policy)
	if err != nil {
		return err
	}
	defer coord.Close()
	reg := newRegistry()
	coord.Instrument(reg)
	// The pool manager fronts the cluster with the paper's hiring
	// lifecycle: /ingest routes through it (fired workers are rejected)
	// and /review turns accumulated evidence into decisions.
	ce := dist.NewClusterEvaluator(coord, 0)
	mgr, err := pool.NewManagerWith(ce, pool.DefaultPolicy())
	if err != nil {
		return err
	}
	mgr.Instrument(reg)
	// WAL mode: one store per task slice. Every acked fan-out is journaled,
	// the periodic checkpoint is an O(delta) compact snapshot plus journal
	// truncate, and the monitor's reseed rebuilds a fully-dead slice from
	// its store (zero acked loss) instead of a stale CCKP file.
	var sliceStores []*store.Store
	if cfg.wal != "" {
		sliceStores, err = openSliceStores(cfg.wal, coord.Slices(), cfg.fsync, reg)
		if err != nil {
			return err
		}
		defer closeStores(sliceStores)
		if err := coord.AttachSliceStores(sliceStores); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "crowdd: journaling %d slices under %s\n", coord.Slices(), cfg.wal)
	}
	mon.CheckpointDir = cfg.ckpt
	mon.OnEvent = dist.ChainEvents(dist.EventMetrics(reg), func(e dist.Event) {
		fmt.Fprintf(os.Stderr, "crowdd: cluster: %s\n", e)
	})
	coord.StartMonitor(mon).Instrument(reg)
	fmt.Fprintf(os.Stderr, "crowdd: coordinating %d slices × %d nodes for a %d-worker crowd\n",
		coord.Slices(), coord.Nodes(), workers)

	persist, persistEvery := func() error { return nil }, time.Duration(0)
	switch {
	case cfg.wal != "":
		persist, persistEvery = coord.CheckpointCompactAll, cfg.snapEvery
	case cfg.ckpt != "":
		persist = func() error {
			_, err := coord.CheckpointAll(cfg.ckpt)
			return err
		}
		persistEvery = cfg.ckptEvery // 0 keeps the documented "final write only"
	}
	stopTicker := make(chan struct{})
	tickerDone := make(chan struct{})
	if persistEvery > 0 {
		go func() {
			defer close(tickerDone)
			tick := time.NewTicker(persistEvery)
			defer tick.Stop()
			for {
				select {
				case <-tick.C:
					if err := persist(); err != nil {
						fmt.Fprintf(os.Stderr, "crowdd: cluster checkpoint: %v\n", err)
					}
				case <-stopTicker:
					return
				}
			}
		}()
	} else {
		close(tickerDone)
	}

	srv := &http.Server{Addr: health, Handler: obs.HTTPMiddleware(newCoordinatorMux(coord, mgr, ce, reg, pprofOn), headLogger(), reg, "coord")}
	serveErr := make(chan error, 1)
	go func() {
		if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			serveErr <- err
			return
		}
		serveErr <- nil
	}()
	fmt.Fprintf(os.Stderr, "crowdd: coordinator API on %s\n", health)

	shutdown := func() error {
		close(stopTicker)
		<-tickerDone
		var err error
		if cfg.wal != "" || cfg.ckpt != "" {
			if err = persist(); err != nil {
				err = fmt.Errorf("final cluster checkpoint: %w", err)
			}
		}
		shutdownHealth(srv)
		return err
	}
	select {
	case err := <-serveErr:
		if sderr := shutdown(); err == nil {
			err = sderr
		}
		return err
	case <-done:
	}
	fmt.Fprintf(os.Stderr, "crowdd: coordinator shutting down\n")
	err = shutdown()
	if serveRes := <-serveErr; err == nil {
		err = serveRes
	}
	return err
}
