package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"crowdassess/internal/crowd"
	"crowdassess/internal/dist"
	"crowdassess/internal/store"
)

func newTestWorker(t *testing.T) *dist.Worker {
	t.Helper()
	w, err := dist.NewWorker(dist.WorkerOptions{Workers: 5, Shards: 2, Name: ":7333"})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { w.Close() })
	return w
}

// TestCheckpointLifecycle drives the daemon's restart story at the helper
// level: ingest, save, restart into a fresh worker, and the restored
// node's snapshot is byte-identical to the one on disk.
func TestCheckpointLifecycle(t *testing.T) {
	path := filepath.Join(t.TempDir(), "node.ckpt")

	w := newTestWorker(t)
	// Missing file: fresh start, not an error.
	if n, err := loadCheckpoint(w, path); err != nil || n != -1 {
		t.Fatalf("load of missing checkpoint: n=%d err=%v, want -1, nil", n, err)
	}
	for task := 0; task < 40; task++ {
		for crowdWorker := 0; crowdWorker < 5; crowdWorker++ {
			if (task+crowdWorker)%3 == 0 {
				continue
			}
			if err := w.Evaluator().Add(crowdWorker, task, crowd.Response(1+crowdassessResponse(crowdWorker, task))); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := saveCheckpoint(w, path); err != nil {
		t.Fatal(err)
	}

	restarted := newTestWorker(t)
	n, err := loadCheckpoint(restarted, path)
	if err != nil {
		t.Fatal(err)
	}
	if want := w.Evaluator().Responses(); n != want {
		t.Fatalf("restored %d responses, want %d", n, want)
	}
	want, err := dist.EncodeSnapshot(w.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	got, err := dist.EncodeSnapshot(restarted.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("restarted worker's snapshot differs from the original")
	}

	// Saving over an existing checkpoint is atomic and idempotent.
	if err := saveCheckpoint(restarted, path); err != nil {
		t.Fatal(err)
	}
	onDisk, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(onDisk, want) {
		t.Fatal("re-saved checkpoint differs from the original")
	}
}

// crowdassessResponse deterministically picks a binary answer (0 or 1,
// offset to Yes/No by the caller).
func crowdassessResponse(w, t int) int { return (w*31 + t*17) % 2 }

// TestCheckpointCorruptionRefusesStart: a daemon pointed at a damaged
// checkpoint must refuse to start, not serve skewed statistics.
func TestCheckpointCorruptionRefusesStart(t *testing.T) {
	path := filepath.Join(t.TempDir(), "node.ckpt")
	w := newTestWorker(t)
	if err := w.Evaluator().Add(0, 1, 1); err != nil {
		t.Fatal(err)
	}
	if err := w.Evaluator().Add(1, 1, 2); err != nil {
		t.Fatal(err)
	}
	if err := saveCheckpoint(w, path); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)/2] ^= 0x20
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	fresh := newTestWorker(t)
	if _, err := loadCheckpoint(fresh, path); err == nil || !strings.Contains(err.Error(), "ckpt") {
		t.Fatalf("corrupt checkpoint load: %v", err)
	}
}

// TestValidateStorageFlags pins the persistence flag matrix: the two modes
// are mutually exclusive, intervals must be sane, -fsync must parse, and
// migration needs a WAL target.
func TestValidateStorageFlags(t *testing.T) {
	cases := []struct {
		name      string
		ckpt      string
		ckptEvery time.Duration
		wal       string
		fsync     string
		snapEvery time.Duration
		migrate   string
		wantErr   string
	}{
		{name: "no persistence", fsync: "always"},
		{name: "legacy only", ckpt: "node.ckpt", ckptEvery: time.Minute, fsync: "always"},
		{name: "wal only", wal: "waldir", fsync: "always", snapEvery: time.Minute},
		{name: "wal interval fsync", wal: "waldir", fsync: "interval", snapEvery: time.Second},
		{name: "wal never fsync", wal: "waldir", fsync: "never", snapEvery: time.Second},
		{name: "wal with migration", wal: "waldir", fsync: "always", snapEvery: time.Minute, migrate: "old.ckpt"},
		{name: "both modes", ckpt: "node.ckpt", wal: "waldir", fsync: "always", snapEvery: time.Minute, wantErr: "mutually exclusive"},
		{name: "zero snapshot interval", wal: "waldir", fsync: "always", snapEvery: 0, wantErr: "must be positive"},
		{name: "negative snapshot interval", wal: "waldir", fsync: "always", snapEvery: -time.Second, wantErr: "must be positive"},
		{name: "negative checkpoint interval", ckpt: "node.ckpt", ckptEvery: -time.Minute, fsync: "always", wantErr: "negative"},
		{name: "bad fsync", wal: "waldir", fsync: "sometimes", snapEvery: time.Minute, wantErr: "fsync"},
		{name: "migration without wal", fsync: "always", migrate: "old.ckpt", wantErr: "requires -wal"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg, err := validateStorage(tc.ckpt, tc.ckptEvery, tc.wal, tc.fsync, tc.snapEvery, tc.migrate)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("valid flags rejected: %v", err)
				}
				if cfg.wal != tc.wal || cfg.ckpt != tc.ckpt || cfg.migrate != tc.migrate {
					t.Fatalf("config dropped flag values: %+v", cfg)
				}
				return
			}
			if err == nil {
				t.Fatalf("invalid flags accepted: %+v", cfg)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
	// The parsed fsync policy must map to the engine's, not just not-error.
	cfg, err := validateStorage("", 0, "waldir", "never", time.Minute, "")
	if err != nil || cfg.fsync != store.FsyncNever {
		t.Fatalf("fsync never parsed to %v (err %v)", cfg.fsync, err)
	}
}

// TestWALLifecycle drives the daemon's WAL restart story at the helper
// level: a store-backed worker journals coordinator ingests, and a restart
// through recoverWorker rebuilds the evaluator exactly.
func TestWALLifecycle(t *testing.T) {
	dir := t.TempDir()
	cfg, err := validateStorage("", 0, dir, "never", time.Minute, "")
	if err != nil {
		t.Fatal(err)
	}
	st, err := cfg.openWorkerStore(nil)
	if err != nil {
		t.Fatal(err)
	}
	w, err := dist.NewWorker(dist.WorkerOptions{Workers: 5, Shards: 2, Store: st})
	if err != nil {
		t.Fatal(err)
	}
	conn, err := w.SelfConn()
	if err != nil {
		t.Fatal(err)
	}
	coord, err := dist.NewCoordinator(5, []*dist.Conn{conn})
	if err != nil {
		t.Fatal(err)
	}
	var batch []dist.Response
	for task := 0; task < 40; task++ {
		for cw := 0; cw < 5; cw++ {
			if (task+cw)%3 == 0 {
				continue
			}
			batch = append(batch, dist.Response{Worker: cw, Task: task, Answer: crowd.Response(1 + crowdassessResponse(cw, task))})
		}
	}
	if err := coord.Ingest(batch); err != nil {
		t.Fatal(err)
	}
	want := w.Evaluator().Responses()
	coord.Close()
	w.Close()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := cfg.openWorkerStore(nil)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	w2, err := dist.NewWorker(dist.WorkerOptions{Workers: 5, Shards: 2, Store: st2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { w2.Close() })
	n, err := recoverWorker(w2, st2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if n != want {
		t.Fatalf("recovered %d responses, want %d", n, want)
	}
}

// TestMigrateCheckpointSeedsWAL: -migrate-checkpoint loads a legacy CCKP
// file into an empty WAL store and pins it with a compact snapshot, so the
// next (migration-free) startup recovers from the store alone; migrating
// into a store that already holds state is refused.
func TestMigrateCheckpointSeedsWAL(t *testing.T) {
	legacy := filepath.Join(t.TempDir(), "node.ckpt")
	seed := newTestWorker(t)
	for task := 0; task < 25; task++ {
		for cw := 0; cw < 5; cw++ {
			if (task+cw)%4 == 0 {
				continue
			}
			if err := seed.Evaluator().Add(cw, task, crowd.Response(1+crowdassessResponse(cw, task))); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := saveCheckpoint(seed, legacy); err != nil {
		t.Fatal(err)
	}
	want := seed.Evaluator().Responses()

	dir := t.TempDir()
	cfg, err := validateStorage("", 0, dir, "never", time.Minute, legacy)
	if err != nil {
		t.Fatal(err)
	}
	st, err := cfg.openWorkerStore(nil)
	if err != nil {
		t.Fatal(err)
	}
	w, err := dist.NewWorker(dist.WorkerOptions{Workers: 5, Shards: 2, Store: st})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { w.Close() })
	n, err := recoverWorker(w, st, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if n != want {
		t.Fatalf("migrated %d responses, want %d", n, want)
	}
	w.Close()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// The store now carries the state: a migration-free restart recovers it,
	// and a second migration attempt is refused.
	st2, err := cfg.openWorkerStore(nil)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	w2, err := dist.NewWorker(dist.WorkerOptions{Workers: 5, Shards: 2, Store: st2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { w2.Close() })
	plain := cfg
	plain.migrate = ""
	if n, err := recoverWorker(w2, st2, plain); err != nil || n != want {
		t.Fatalf("post-migration recovery: n=%d err=%v, want %d, nil", n, err, want)
	}
	w3, err := dist.NewWorker(dist.WorkerOptions{Workers: 5, Shards: 2, Store: st2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { w3.Close() })
	if _, err := recoverWorker(w3, st2, cfg); err == nil {
		t.Fatal("migration into a non-empty WAL store accepted")
	} else if !strings.Contains(err.Error(), "non-empty") {
		t.Fatalf("wrong refusal: %v", err)
	}
}

// TestValidateTimeouts: the duration flags reject nonsense with errors
// that name the flag. A negative -rpc-timeout used to be silently
// ignored; a zero -heartbeat-interval used to be silently replaced by
// the monitor's default.
func TestValidateTimeouts(t *testing.T) {
	if err := validateTimeouts(0, time.Second); err != nil {
		t.Errorf("zero rpc-timeout (= defaults) rejected: %v", err)
	}
	if err := validateTimeouts(30*time.Second, time.Second); err != nil {
		t.Errorf("valid timeouts rejected: %v", err)
	}
	err := validateTimeouts(-time.Second, time.Second)
	if err == nil || !strings.Contains(err.Error(), "-rpc-timeout") {
		t.Errorf("negative -rpc-timeout: err = %v, want an error naming the flag", err)
	}
	for _, hb := range []time.Duration{0, -time.Second} {
		err := validateTimeouts(0, hb)
		if err == nil || !strings.Contains(err.Error(), "-heartbeat-interval") {
			t.Errorf("heartbeat-interval %v: err = %v, want an error naming the flag", hb, err)
		}
	}
}
