package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"crowdassess/internal/crowd"
	"crowdassess/internal/dist"
)

func newTestWorker(t *testing.T) *dist.Worker {
	t.Helper()
	w, err := dist.NewWorker(dist.WorkerOptions{Workers: 5, Shards: 2, Name: ":7333"})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { w.Close() })
	return w
}

// TestCheckpointLifecycle drives the daemon's restart story at the helper
// level: ingest, save, restart into a fresh worker, and the restored
// node's snapshot is byte-identical to the one on disk.
func TestCheckpointLifecycle(t *testing.T) {
	path := filepath.Join(t.TempDir(), "node.ckpt")

	w := newTestWorker(t)
	// Missing file: fresh start, not an error.
	if n, err := loadCheckpoint(w, path); err != nil || n != -1 {
		t.Fatalf("load of missing checkpoint: n=%d err=%v, want -1, nil", n, err)
	}
	for task := 0; task < 40; task++ {
		for crowdWorker := 0; crowdWorker < 5; crowdWorker++ {
			if (task+crowdWorker)%3 == 0 {
				continue
			}
			if err := w.Evaluator().Add(crowdWorker, task, crowd.Response(1+crowdassessResponse(crowdWorker, task))); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := saveCheckpoint(w, path); err != nil {
		t.Fatal(err)
	}

	restarted := newTestWorker(t)
	n, err := loadCheckpoint(restarted, path)
	if err != nil {
		t.Fatal(err)
	}
	if want := w.Evaluator().Responses(); n != want {
		t.Fatalf("restored %d responses, want %d", n, want)
	}
	want, err := dist.EncodeSnapshot(w.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	got, err := dist.EncodeSnapshot(restarted.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("restarted worker's snapshot differs from the original")
	}

	// Saving over an existing checkpoint is atomic and idempotent.
	if err := saveCheckpoint(restarted, path); err != nil {
		t.Fatal(err)
	}
	onDisk, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(onDisk, want) {
		t.Fatal("re-saved checkpoint differs from the original")
	}
}

// crowdassessResponse deterministically picks a binary answer (0 or 1,
// offset to Yes/No by the caller).
func crowdassessResponse(w, t int) int { return (w*31 + t*17) % 2 }

// TestCheckpointCorruptionRefusesStart: a daemon pointed at a damaged
// checkpoint must refuse to start, not serve skewed statistics.
func TestCheckpointCorruptionRefusesStart(t *testing.T) {
	path := filepath.Join(t.TempDir(), "node.ckpt")
	w := newTestWorker(t)
	if err := w.Evaluator().Add(0, 1, 1); err != nil {
		t.Fatal(err)
	}
	if err := w.Evaluator().Add(1, 1, 2); err != nil {
		t.Fatal(err)
	}
	if err := saveCheckpoint(w, path); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)/2] ^= 0x20
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	fresh := newTestWorker(t)
	if _, err := loadCheckpoint(fresh, path); err == nil || !strings.Contains(err.Error(), "ckpt") {
		t.Fatalf("corrupt checkpoint load: %v", err)
	}
}
