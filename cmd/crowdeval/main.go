// Command crowdeval evaluates the workers of a response dataset: it reads a
// JSON dataset (see the crowdassess package for the format), estimates each
// worker's error rate with a confidence interval, and prints a report.
//
// Usage:
//
//	crowdeval -in responses.json [-confidence 0.9] [-prune] [-aggregate] [-parallel]
//	cat responses.json | crowdeval
//
// With -prune, workers failing the majority-vote spammer screen are removed
// before estimation (recommended for open crowds). With -aggregate, the
// estimated error rates are then used to infer each task's answer by
// weighted voting, printed after the worker report.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"crowdassess"
)

func main() {
	var (
		in         = flag.String("in", "", "input dataset file (default stdin)")
		format     = flag.String("in-format", "json", "input format: json, or csv (worker,task,response[,truth] rows)")
		confidence = flag.Float64("confidence", 0.9, "confidence level for intervals")
		prune      = flag.Bool("prune", false, "remove majority-vote spammers before estimating")
		aggregate  = flag.Bool("aggregate", false, "also infer task answers by weighted voting")
		threshold  = flag.Float64("prune-threshold", 0, "spammer disagreement cutoff (0 = paper default 0.4)")
		parallel   = flag.Bool("parallel", false, "evaluate workers on all CPUs (results identical to serial)")
	)
	flag.Parse()

	reader := os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		reader = f
	}
	var ds *crowdassess.Dataset
	var err error
	switch *format {
	case "json":
		ds, err = crowdassess.ReadDataset(reader)
	case "csv":
		ds, _, _, err = crowdassess.ReadDatasetCSV(reader)
	default:
		fatal(fmt.Errorf("unknown -in-format %q (json or csv)", *format))
	}
	if err != nil {
		fatal(fmt.Errorf("parsing dataset: %w", err))
	}
	fmt.Printf("dataset: %d workers × %d tasks, arity %d, density %.2f\n",
		ds.Workers(), ds.Tasks(), ds.Arity(), ds.Density())
	if ds.Arity() != 2 {
		fatal(fmt.Errorf("crowdeval evaluates binary datasets; got arity %d "+
			"(use the library's EvaluateWorkersKAry for k-ary data)", ds.Arity()))
	}

	// Map from evaluated index back to the input's worker index.
	orig := make([]int, ds.Workers())
	for i := range orig {
		orig[i] = i
	}
	if *prune {
		pruned, keep, err := crowdassess.PruneSpammers(ds, *threshold)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("pruned %d suspected spammers: ", ds.Workers()-pruned.Workers())
		var gone []int
		kept := map[int]bool{}
		for _, w := range keep {
			kept[w] = true
		}
		for w := 0; w < ds.Workers(); w++ {
			if !kept[w] {
				gone = append(gone, w)
			}
		}
		fmt.Println(gone)
		ds, orig = pruned, keep
	}

	ests, err := crowdassess.EvaluateWorkers(ds, crowdassess.Options{Confidence: *confidence, Parallel: *parallel})
	if err != nil {
		fatal(err)
	}
	// Most reliable first; unevaluable workers last.
	sort.SliceStable(ests, func(a, b int) bool {
		switch {
		case ests[a].Err != nil:
			return false
		case ests[b].Err != nil:
			return true
		}
		return ests[a].Interval.Mean < ests[b].Interval.Mean
	})
	fmt.Printf("\nworker  error-rate  %.0f%% interval     triples\n", *confidence*100)
	for _, e := range ests {
		if e.Err != nil {
			fmt.Printf("  w%-4d (no estimate: %v)\n", orig[e.Worker], e.Err)
			continue
		}
		fmt.Printf("  w%-4d %.3f      [%.3f, %.3f]   %d\n",
			orig[e.Worker], e.Interval.Mean, e.Interval.Lo, e.Interval.Hi, e.Triples)
	}

	if *aggregate {
		rates := make([]float64, ds.Workers())
		for i := range rates {
			rates[i] = 0.49 // default for unevaluable workers: ≈ no weight
		}
		for _, e := range ests {
			if e.Err == nil {
				rates[e.Worker] = e.Interval.Mean
			}
		}
		answers, err := crowdassess.WeightedBinaryAnswers(ds, rates)
		if err != nil {
			fatal(err)
		}
		fmt.Println("\ntask answers (weighted vote):")
		for t, a := range answers {
			if a.Response == crowdassess.None {
				fmt.Printf("  t%-4d (no responses)\n", t)
				continue
			}
			label := "Yes"
			if a.Response == crowdassess.No {
				label = "No"
			}
			fmt.Printf("  t%-4d %-3s (posterior %.3f)\n", t, label, a.Confidence)
		}
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "crowdeval: %v\n", err)
	os.Exit(1)
}
