// Package store stands in for the storage engine: its path matches the
// errclass analyzer's scope, so the blank-discarded error below must be
// reported.
package store

import "errors"

// Drop throws an error away.
func Drop() {
	_ = errors.New("dropped")
}
