// Package clean has nothing to report: the exit-0 path under test.
package clean

// Add is as deterministic as it gets.
func Add(a, b int) int {
	return a + b
}
