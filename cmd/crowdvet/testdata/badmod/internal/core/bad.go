// Package core stands in for a bit-identity-critical package: its
// module-relative path matches the determinism analyzer's scope, so the
// wall-clock read below must be reported.
package core

import "time"

// Stamp reads the wall clock on a decision path.
func Stamp() int64 {
	return time.Now().UnixNano()
}
