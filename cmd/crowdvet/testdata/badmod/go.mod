module badmod

go 1.23
