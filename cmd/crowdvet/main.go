// Command crowdvet runs the project-invariant static analyzers over the
// module: determinism, workspace discipline, lock hygiene, error
// classification and durability ordering (see internal/analysis for
// what each enforces and why). It is stdlib-only — go/parser, go/types
// and a from-source importer — so the module stays dependency-free.
//
// Usage:
//
//	crowdvet [-json] [-checks determinism,locks,...] ./...
//	crowdvet ./internal/dist ./internal/store
//
// Exit status: 0 when clean, 1 when there are findings, 2 on usage or
// load errors. Findings can be suppressed line-by-line with
//
//	//crowdvet:ignore <check> <reason>
//
// where the reason is mandatory and reviewed like code; an ignore
// without one is itself a finding.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"crowdassess/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("crowdvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array for tooling")
	checks := fs.String("checks", "", "comma-separated subset of checks to run (default: all)")
	dir := fs.String("C", ".", "run as if launched from this directory")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() == 0 {
		fmt.Fprintln(stderr, "crowdvet: no packages named (try ./...)")
		return 2
	}

	loader, err := analysis.NewLoader(*dir)
	if err != nil {
		fmt.Fprintf(stderr, "crowdvet: %v\n", err)
		return 2
	}

	analyzers, err := selectAnalyzers(*checks)
	if err != nil {
		fmt.Fprintf(stderr, "crowdvet: %v\n", err)
		return 2
	}

	rels, err := expandPatterns(loader, *dir, fs.Args())
	if err != nil {
		fmt.Fprintf(stderr, "crowdvet: %v\n", err)
		return 2
	}

	var diags []analysis.Diagnostic
	for _, rel := range rels {
		pkg, err := loader.Load(loader.ImportPathFor(rel))
		if err != nil {
			fmt.Fprintf(stderr, "crowdvet: %v\n", err)
			return 2
		}
		diags = append(diags, analysis.Run(pkg, analyzers)...)
	}

	if *jsonOut {
		if err := analysis.WriteJSON(stdout, loader.ModDir, diags); err != nil {
			fmt.Fprintf(stderr, "crowdvet: %v\n", err)
			return 2
		}
	} else {
		analysis.WriteText(stdout, loader.ModDir, diags)
	}
	if len(diags) > 0 {
		if !*jsonOut {
			fmt.Fprintf(stderr, "crowdvet: %d finding(s)\n", len(diags))
		}
		return 1
	}
	return 0
}

// selectAnalyzers resolves the -checks flag against the registry.
func selectAnalyzers(spec string) ([]*analysis.Analyzer, error) {
	all := analysis.Analyzers()
	if spec == "" {
		return all, nil
	}
	byName := map[string]*analysis.Analyzer{}
	for _, a := range all {
		byName[a.Name] = a
	}
	var out []*analysis.Analyzer
	for _, name := range strings.Split(spec, ",") {
		name = strings.TrimSpace(name)
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown check %q (have: %s)", name, strings.Join(analysis.AnalyzerNames(), ", "))
		}
		out = append(out, a)
	}
	return out, nil
}

// expandPatterns maps command-line package patterns to module-relative
// paths: "./..." walks the whole module, "dir/..." a subtree, plain
// paths name single package directories.
func expandPatterns(loader *analysis.Loader, base string, patterns []string) ([]string, error) {
	allPkgs, err := loader.ModulePackages()
	if err != nil {
		return nil, err
	}
	seen := map[string]bool{}
	var out []string
	add := func(rel string) {
		if !seen[rel] {
			seen[rel] = true
			out = append(out, rel)
		}
	}
	for _, pat := range patterns {
		prefix, recursive := strings.CutSuffix(pat, "...")
		if recursive {
			root, err := patternRel(loader, base, strings.TrimSuffix(prefix, "/"))
			if err != nil {
				return nil, err
			}
			matched := false
			for _, rel := range allPkgs {
				if root == "" || rel == root || strings.HasPrefix(rel, root+"/") {
					add(rel)
					matched = true
				}
			}
			if !matched {
				return nil, fmt.Errorf("pattern %q matches no packages", pat)
			}
			continue
		}
		rel, err := patternRel(loader, base, pat)
		if err != nil {
			return nil, err
		}
		for _, known := range allPkgs {
			if known == rel {
				add(rel)
				rel = ""
				break
			}
		}
		if rel != "" {
			return nil, fmt.Errorf("no package at %q", pat)
		}
	}
	return out, nil
}

// patternRel resolves a pattern base (a filesystem-ish path like "." or
// "./internal/dist", or a module-relative path) to a module-relative
// package path.
func patternRel(loader *analysis.Loader, base, pat string) (string, error) {
	p := pat
	if p == "" || p == "." || p == "./" {
		// Relative to base; base itself may sit below the module root.
		abs, err := filepath.Abs(base)
		if err != nil {
			return "", err
		}
		rel, err := filepath.Rel(loader.ModDir, abs)
		if err != nil || strings.HasPrefix(rel, "..") {
			return "", fmt.Errorf("%q is outside module %s", base, loader.ModPath)
		}
		if rel == "." {
			return "", nil
		}
		return filepath.ToSlash(rel), nil
	}
	p = strings.TrimPrefix(p, "./")
	p = strings.TrimSuffix(p, "/")
	if base != "." && base != "" {
		sub, err := patternRel(loader, base, ".")
		if err != nil {
			return "", err
		}
		if sub != "" {
			p = sub + "/" + p
		}
	}
	return filepath.ToSlash(p), nil
}
