package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// The badmod fixture under testdata is a tiny self-contained module
// whose package paths (internal/core, internal/store) land inside the
// analyzers' scopes and carry one violation each. Driving the real run()
// against it pins the CLI contract: exit 1 with findings, exit 0 clean,
// exit 2 on usage errors, and the -json / -checks flags.

func runCLI(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestFindingsExitNonZero(t *testing.T) {
	code, stdout, stderr := runCLI(t, "-C", "testdata/badmod", "./...")
	if code != 1 {
		t.Fatalf("exit = %d, want 1\nstdout:\n%s\nstderr:\n%s", code, stdout, stderr)
	}
	for _, want := range []string{
		"internal/core/bad.go:10:", "determinism: call to time.Now",
		"internal/store/bad.go:10:", "errclass: error discarded with _",
	} {
		if !strings.Contains(stdout, want) {
			t.Errorf("stdout missing %q:\n%s", want, stdout)
		}
	}
	if !strings.Contains(stderr, "2 finding(s)") {
		t.Errorf("stderr missing summary: %q", stderr)
	}
}

func TestCleanPackageExitsZero(t *testing.T) {
	code, stdout, stderr := runCLI(t, "-C", "testdata/badmod", "./internal/clean")
	if code != 0 {
		t.Fatalf("exit = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, stdout, stderr)
	}
	if stdout != "" {
		t.Errorf("clean run produced output: %q", stdout)
	}
}

func TestJSONOutput(t *testing.T) {
	code, stdout, _ := runCLI(t, "-json", "-C", "testdata/badmod", "./...")
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	var diags []struct {
		File    string `json:"file"`
		Line    int    `json:"line"`
		Col     int    `json:"col"`
		Check   string `json:"check"`
		Message string `json:"message"`
	}
	if err := json.Unmarshal([]byte(stdout), &diags); err != nil {
		t.Fatalf("-json output is not a JSON array: %v\n%s", err, stdout)
	}
	if len(diags) != 2 {
		t.Fatalf("got %d findings, want 2: %+v", len(diags), diags)
	}
	checks := map[string]bool{}
	for _, d := range diags {
		checks[d.Check] = true
		if d.File == "" || d.Line == 0 || d.Message == "" {
			t.Errorf("finding missing fields: %+v", d)
		}
	}
	if !checks["determinism"] || !checks["errclass"] {
		t.Errorf("finding checks = %v, want determinism and errclass", checks)
	}
}

func TestChecksFlagSelectsSubset(t *testing.T) {
	code, stdout, _ := runCLI(t, "-checks", "errclass", "-C", "testdata/badmod", "./...")
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	if strings.Contains(stdout, "determinism") {
		t.Errorf("-checks errclass still ran determinism:\n%s", stdout)
	}
	if !strings.Contains(stdout, "errclass: error discarded") {
		t.Errorf("-checks errclass dropped its own finding:\n%s", stdout)
	}
}

func TestUnknownCheckIsUsageError(t *testing.T) {
	code, _, stderr := runCLI(t, "-checks", "nosuch", "-C", "testdata/badmod", "./...")
	if code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if !strings.Contains(stderr, "unknown check") {
		t.Errorf("stderr missing diagnosis: %q", stderr)
	}
}

func TestNoPackagesIsUsageError(t *testing.T) {
	if code, _, _ := runCLI(t); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
}

func TestSubtreePattern(t *testing.T) {
	code, stdout, _ := runCLI(t, "-C", "testdata/badmod", "./internal/store/...")
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	if strings.Contains(stdout, "determinism") {
		t.Errorf("subtree pattern leaked other packages:\n%s", stdout)
	}
}
