// Command crowdsim generates synthetic crowd datasets for experimenting
// with the evaluation tools:
//
//	crowdsim -workers 10 -tasks 200 -density 0.7 -spammers 2 > crowd.json
//	crowdsim -arity 3 -workers 5 -tasks 500 -format csv > grades.csv
//	crowdsim ... | crowdeval -in-format json -prune
//
// Binary crowds draw per-worker error rates from the paper's {0.1,0.2,0.3}
// mix (overridable), optionally replacing some workers with spammers; k-ary
// crowds assign each worker one of the paper's response-probability
// matrices for the chosen arity.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"crowdassess"
)

func main() {
	var (
		workers    = flag.Int("workers", 7, "number of workers")
		tasks      = flag.Int("tasks", 100, "number of tasks")
		arity      = flag.Int("arity", 2, "answers per task (2 = binary; 3 or 4 use the paper's matrices)")
		density    = flag.Float64("density", 1, "per-worker probability of attempting each task")
		spammers   = flag.Int("spammers", 0, "workers replaced by ≈coin-flip spammers (binary only)")
		rates      = flag.String("rates", "", "comma-separated per-worker error rates (binary only; overrides -spammers)")
		difficulty = flag.Float64("difficulty", 0, "per-task difficulty stddev (binary only; breaks independence like real data)")
		seed       = flag.Int64("seed", 1, "random seed")
		format     = flag.String("format", "json", "output format: json or csv")
	)
	flag.Parse()

	src := crowdassess.NewSimSource(*seed)
	var ds *crowdassess.Dataset
	var err error
	switch {
	case *arity == 2:
		cfg := crowdassess.BinarySim{
			Tasks:            *tasks,
			Workers:          *workers,
			Density:          *density,
			DifficultyStdDev: *difficulty,
		}
		if *rates != "" {
			cfg.ErrorRates, err = parseRates(*rates, *workers)
			if err != nil {
				fatal(err)
			}
		} else if *spammers > 0 {
			if *spammers >= *workers {
				fatal(fmt.Errorf("%d spammers leave no honest workers", *spammers))
			}
			rs := make([]float64, *workers)
			for i := range rs {
				if i >= *workers-*spammers {
					rs[i] = 0.45 + 0.05*src.Float64()
				} else {
					rs[i] = src.Choice([]float64{0.1, 0.2, 0.3})
				}
			}
			cfg.ErrorRates = rs
		}
		ds, _, err = cfg.Generate(src)
	case crowdassess.PaperConfusionMatrices(*arity) != nil:
		ds, _, err = crowdassess.KArySim{
			Tasks:            *tasks,
			Workers:          *workers,
			ConfusionChoices: crowdassess.PaperConfusionMatrices(*arity),
			Density:          *density,
		}.Generate(src)
	default:
		fatal(fmt.Errorf("arity %d unsupported (2, 3 or 4)", *arity))
	}
	if err != nil {
		fatal(err)
	}

	switch *format {
	case "json":
		if _, err := ds.WriteTo(os.Stdout); err != nil {
			fatal(err)
		}
		fmt.Println()
	case "csv":
		if err := ds.WriteCSV(os.Stdout); err != nil {
			fatal(err)
		}
	default:
		fatal(fmt.Errorf("unknown -format %q (json or csv)", *format))
	}
}

func parseRates(s string, workers int) ([]float64, error) {
	parts := strings.Split(s, ",")
	if len(parts) != workers {
		return nil, fmt.Errorf("-rates lists %d values for %d workers", len(parts), workers)
	}
	out := make([]float64, len(parts))
	for i, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil || v < 0 || v > 1 {
			return nil, fmt.Errorf("-rates[%d] = %q is not a probability", i, p)
		}
		out[i] = v
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "crowdsim: %v\n", err)
	os.Exit(1)
}
