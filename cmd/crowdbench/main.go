// Command crowdbench regenerates the evaluation figures of "Comprehensive
// and Reliable Crowd Assessment Algorithms" (ICDE 2015).
//
// Usage:
//
//	crowdbench -experiment fig1 [-replicates 500] [-seed 1] [-format table] [-o out.dat]
//	crowdbench -experiment all  [-replicates 50] [-parallel]
//	crowdbench -experiment all  -replicates 20 -parallel -benchjson BENCH_1.json
//	crowdbench -ingest 1,2,4,8 -ingest-goroutines 8 -benchjson BENCH_3.json
//	crowdbench -dist 1,2,4 -benchjson BENCH_4.json
//	crowdbench -latency -benchjson BENCH_5.json
//	crowdbench -list
//
// -parallel fans replicates out over every CPU; the per-replicate seeding
// and merge order are unchanged, so the output is byte-identical to a
// serial run. -benchjson additionally records each experiment's wall-clock
// time as machine-readable JSON, so the performance trajectory of the
// runners can be tracked across commits.
//
// -ingest switches to the streaming-ingestion benchmark: for each listed
// shard count it streams one synthetic crowd concurrently into a
// core.ShardedIncremental and reports ingestion throughput (ops/sec vs
// shard count — the sharded evaluator's scaling claim) plus the merge +
// EvaluateAll time that follows. The same submissions go to every shard
// count, so the numbers are comparable within a run.
//
// -latency switches to the closed-loop serving-latency benchmark: the
// submission stream goes through an in-process one-node cluster in
// concurrent batches, and every coordinator ingest round trip plus a
// series of full EvaluateAll rounds is timed into internal/obs
// fixed-bucket histograms. The record carries p50/p95/p99 — the
// serving-layer latency baseline the ROADMAP asks for, in the same
// estimator a live crowdd exports on /metrics.
//
// -dist switches to the distributed-cluster benchmark: for each listed
// node count it spins up that many in-process dist workers, routes the
// same synthetic submission stream through a coordinator in concurrent
// batches, and records ingestion throughput plus the pull + merge +
// EvaluateAll time — the wire-protocol overhead a real crowdd cluster
// pays on top of the in-memory sharded evaluator. A distributed replicate
// sweep is timed per node count too. The workload shape is shared with
// -ingest: -ingest-workers, -ingest-tasks and -ingest-goroutines size the
// crowd, the task space and the concurrent submitters for both
// benchmarks, so their numbers stay comparable.
//
// With -experiment all, every figure is regenerated in sequence; output for
// experiment NAME goes to <out-prefix>NAME.<ext> when -o is given a prefix
// ending in a path separator or to stdout otherwise.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"

	"crowdassess/internal/core"
	"crowdassess/internal/crowd"
	"crowdassess/internal/dist"
	"crowdassess/internal/eval"
	"crowdassess/internal/obs"
	"crowdassess/internal/randx"
	"crowdassess/internal/report"
	"crowdassess/internal/sim"
)

// benchRecord is one experiment's machine-readable timing, written by
// -benchjson so the performance trajectory of the runners is recorded
// across commits. The ingestion benchmark fills the streaming fields;
// figure runs leave them zero (omitted from the JSON).
type benchRecord struct {
	Experiment string  `json:"experiment"`
	Seconds    float64 `json:"seconds"`
	Replicates int     `json:"replicates,omitempty"`
	Seed       int64   `json:"seed"`
	Parallel   bool    `json:"parallel,omitempty"`
	Failures   int     `json:"failures,omitempty"`
	GoMaxProcs int     `json:"gomaxprocs"`

	// Streaming-ingestion fields (-ingest), reused by -dist.
	Shards      int     `json:"shards,omitempty"`
	Goroutines  int     `json:"goroutines,omitempty"`
	Responses   int     `json:"responses,omitempty"`
	OpsPerSec   float64 `json:"ops_per_sec,omitempty"`
	EvalSeconds float64 `json:"eval_seconds,omitempty"`

	// Distributed-cluster fields (-dist).
	Nodes int `json:"nodes,omitempty"`

	// Closed-loop latency fields (-latency, -gate): per-request quantiles
	// estimated from internal/obs fixed-bucket histograms.
	Samples int     `json:"samples,omitempty"`
	P50     float64 `json:"p50_seconds,omitempty"`
	P95     float64 `json:"p95_seconds,omitempty"`
	P99     float64 `json:"p99_seconds,omitempty"`

	// Gateway load fields (-gate): fraction of requests shed or
	// rate-limited with 429 before admission.
	ShedRate float64 `json:"shed_rate,omitempty"`
}

// validateCounts rejects nonsensical count flags up front, naming the
// offending flag. Zero keeps its documented "pick the default" meaning
// where one exists (-replicates, -ingest-goroutines); negatives never
// mean anything.
func validateCounts(replicates, workers, tasks, goroutines, shards int) error {
	if replicates < 0 {
		return fmt.Errorf("-replicates must not be negative (0 means the paper's default), got %d", replicates)
	}
	if workers <= 0 {
		return fmt.Errorf("-ingest-workers must be positive, got %d", workers)
	}
	if tasks <= 0 {
		return fmt.Errorf("-ingest-tasks must be positive, got %d", tasks)
	}
	if goroutines < 0 {
		return fmt.Errorf("-ingest-goroutines must not be negative (0 means GOMAXPROCS), got %d", goroutines)
	}
	if shards <= 0 {
		return fmt.Errorf("-dist-shards must be positive, got %d", shards)
	}
	return nil
}

func main() {
	var (
		experiment = flag.String("experiment", "", "experiment to run (fig1…fig5c, or \"all\")")
		replicates = flag.Int("replicates", 0, "replicates per configuration (0 = paper's default: 500 for synthetic figures)")
		seed       = flag.Int64("seed", 1, "base random seed")
		format     = flag.String("format", "table", "output format: table, csv, or gnuplot")
		out        = flag.String("o", "", "output file (or directory prefix with -experiment all); default stdout")
		list       = flag.Bool("list", false, "list available experiments and exit")
		quiet      = flag.Bool("quiet", false, "suppress progress messages")
		parallel   = flag.Bool("parallel", false, "fan replicates out over all CPUs (results are byte-identical to serial)")
		benchjson  = flag.String("benchjson", "", "also write per-experiment wall-clock timings as JSON to this file (e.g. BENCH_1.json)")

		ingest           = flag.String("ingest", "", "run the streaming-ingestion benchmark over these comma-separated shard counts (e.g. 1,2,4,8)")
		ingestWorkers    = flag.Int("ingest-workers", 64, "ingestion and -dist benchmarks: crowd size")
		ingestTasks      = flag.Int("ingest-tasks", 4000, "ingestion and -dist benchmarks: task count")
		ingestGoroutines = flag.Int("ingest-goroutines", 0, "ingestion and -dist benchmarks: concurrent submitters (0 = GOMAXPROCS, min 8)")

		distNodes  = flag.String("dist", "", "run the distributed-cluster benchmark over these comma-separated node counts (e.g. 1,2,4)")
		distShards = flag.Int("dist-shards", 2, "distributed benchmark: task-stripe shards per node")

		latency = flag.Bool("latency", false, "run the closed-loop serving-latency benchmark: per-request ingest and evaluate quantiles (p50/p95/p99) against an in-process cluster")

		gateBench = flag.Bool("gate", false, "run the closed-loop gateway load benchmark: batch-ingest and worker-query quantiles plus shed rate through a live crowdgate HTTP server")
		gateQueue = flag.Int("gate-queue", 0, "gateway benchmark: admission queue depth (0 = gate default)")
	)
	flag.Parse()

	if err := validateCounts(*replicates, *ingestWorkers, *ingestTasks, *ingestGoroutines, *distShards); err != nil {
		fmt.Fprintf(os.Stderr, "crowdbench: %v\n", err)
		os.Exit(2)
	}

	if *list {
		fmt.Println("available experiments:")
		for _, name := range eval.Experiments() {
			fmt.Printf("  %s\n", name)
		}
		return
	}
	modes := 0
	for _, on := range []bool{*ingest != "", *distNodes != "", *latency, *gateBench} {
		if on {
			modes++
		}
	}
	if modes > 1 {
		fmt.Fprintln(os.Stderr, "crowdbench: -ingest, -dist, -latency and -gate are separate benchmarks; run them one at a time")
		os.Exit(2)
	}
	if modes == 1 {
		var records []benchRecord
		var err error
		switch {
		case *ingest != "":
			records, err = runIngest(*ingest, *ingestWorkers, *ingestTasks, *ingestGoroutines, *seed, *quiet)
		case *latency:
			records, err = runLatency(*distShards, *ingestWorkers, *ingestTasks, *ingestGoroutines, *seed, *quiet)
		case *gateBench:
			records, err = runGate(*distShards, *ingestWorkers, *ingestTasks, *ingestGoroutines, *gateQueue, *seed, *quiet)
		default:
			records, err = runDist(*distNodes, *distShards, *ingestWorkers, *ingestTasks, *ingestGoroutines, *seed, *quiet)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "crowdbench: %v\n", err)
			os.Exit(1)
		}
		if *benchjson != "" {
			if err := writeBenchJSON(*benchjson, records); err != nil {
				fmt.Fprintf(os.Stderr, "crowdbench: %v\n", err)
				os.Exit(1)
			}
		}
		return
	}
	if *experiment == "" {
		fmt.Fprintln(os.Stderr, "crowdbench: -experiment is required (try -list)")
		flag.Usage()
		os.Exit(2)
	}

	names := []string{*experiment}
	if *experiment == "all" {
		names = eval.Experiments()
	}
	params := eval.Params{Replicates: *replicates, Seed: *seed, Parallel: *parallel}
	var records []benchRecord
	for _, name := range names {
		start := time.Now()
		res, err := eval.Run(name, params)
		if err != nil {
			fmt.Fprintf(os.Stderr, "crowdbench: %s: %v\n", name, err)
			os.Exit(1)
		}
		elapsed := time.Since(start)
		if !*quiet {
			fmt.Fprintf(os.Stderr, "crowdbench: %s done in %v (%d degenerate samples skipped)\n",
				name, elapsed.Round(time.Millisecond), res.Failures)
		}
		records = append(records, benchRecord{
			Experiment: name,
			Seconds:    elapsed.Seconds(),
			Replicates: *replicates,
			Seed:       *seed,
			Parallel:   *parallel,
			Failures:   res.Failures,
			GoMaxProcs: runtime.GOMAXPROCS(0),
		})
		w, closeFn, err := openOutput(*out, name, *format, len(names) > 1)
		if err != nil {
			fmt.Fprintf(os.Stderr, "crowdbench: %v\n", err)
			os.Exit(1)
		}
		if err := report.Write(w, *format, res); err != nil {
			fmt.Fprintf(os.Stderr, "crowdbench: %v\n", err)
			os.Exit(1)
		}
		if err := closeFn(); err != nil {
			fmt.Fprintf(os.Stderr, "crowdbench: %v\n", err)
			os.Exit(1)
		}
	}
	if *benchjson != "" {
		if err := writeBenchJSON(*benchjson, records); err != nil {
			fmt.Fprintf(os.Stderr, "crowdbench: %v\n", err)
			os.Exit(1)
		}
	}
}

// maxBenchCounts caps -ingest shard counts and -dist node counts: values
// above it are always a typo, and letting one through would OOM the
// benchmark allocating per-shard state.
const maxBenchCounts = 1 << 12

// parseCountList parses a comma-separated list of positive counts for
// -ingest and -dist, rejecting malformed entries, non-positive values and
// absurd magnitudes with errors that name the flag and the offending
// field, instead of propagating them into the benchmark.
func parseCountList(flagName, list string) ([]int, error) {
	var counts []int
	for _, f := range strings.Split(list, ",") {
		field := strings.TrimSpace(f)
		if field == "" {
			return nil, fmt.Errorf("%s: empty count in %q", flagName, list)
		}
		n, err := strconv.Atoi(field)
		if err != nil {
			return nil, fmt.Errorf("%s: malformed count %q: %v", flagName, field, err)
		}
		if n < 1 {
			return nil, fmt.Errorf("%s: count must be positive, got %d", flagName, n)
		}
		if n > maxBenchCounts {
			return nil, fmt.Errorf("%s: count %d exceeds limit %d", flagName, n, maxBenchCounts)
		}
		counts = append(counts, n)
	}
	return counts, nil
}

// runIngest is the streaming-ingestion benchmark: the same shuffled
// submission stream is ingested concurrently into a ShardedIncremental at
// each requested shard count, and throughput plus the follow-up merge +
// EvaluateAll time are recorded.
func runIngest(shardList string, workers, tasks, goroutines int, seed int64, quiet bool) ([]benchRecord, error) {
	shardCounts, err := parseCountList("-ingest", shardList)
	if err != nil {
		return nil, err
	}
	goroutines = benchGoroutines(goroutines)

	subs, err := genSubmissions(workers, tasks, seed)
	if err != nil {
		return nil, err
	}

	var records []benchRecord
	for _, shards := range shardCounts {
		inc, err := core.NewShardedIncremental(workers, shards)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		var wg sync.WaitGroup
		errs := make([]error, goroutines)
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := g; i < len(subs); i += goroutines {
					s := subs[i]
					if err := inc.Add(s.w, s.t, s.r); err != nil {
						errs[g] = err
						return
					}
				}
			}(g)
		}
		wg.Wait()
		elapsed := time.Since(start)
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
		evalStart := time.Now()
		if _, err := inc.EvaluateAll(core.EvalOptions{Confidence: 0.9}); err != nil {
			return nil, err
		}
		evalElapsed := time.Since(evalStart)
		ops := float64(len(subs)) / elapsed.Seconds()
		if !quiet {
			fmt.Fprintf(os.Stderr, "crowdbench: ingest shards=%d: %d responses in %v (%.0f ops/sec), merge+evaluate %v\n",
				shards, len(subs), elapsed.Round(time.Millisecond), ops, evalElapsed.Round(time.Millisecond))
		}
		records = append(records, benchRecord{
			Experiment:  fmt.Sprintf("ingest/shards=%d", shards),
			Seconds:     elapsed.Seconds(),
			Seed:        seed,
			GoMaxProcs:  runtime.GOMAXPROCS(0),
			Shards:      shards,
			Goroutines:  goroutines,
			Responses:   len(subs),
			OpsPerSec:   ops,
			EvalSeconds: evalElapsed.Seconds(),
		})
	}
	return records, nil
}

// benchGoroutines resolves the submitter count shared by -ingest and
// -dist. Even on small machines it floors at 8: the benchmarks measure
// lock sharding and request batching under real interleaving, not just
// CPU scaling.
func benchGoroutines(n int) int {
	if n > 0 {
		return n
	}
	n = runtime.GOMAXPROCS(0)
	if n < 8 {
		n = 8
	}
	return n
}

// submission is one generated crowd response for the ingestion benchmarks.
type submission struct {
	w, t int
	r    crowd.Response
}

// genSubmissions generates the shuffled synthetic submission stream both
// -ingest and -dist replay, so their numbers are comparable.
func genSubmissions(workers, tasks int, seed int64) ([]submission, error) {
	src := randx.NewSource(seed)
	ds, _, err := sim.Binary{Tasks: tasks, Workers: workers, Density: 0.8}.Generate(src)
	if err != nil {
		return nil, err
	}
	var subs []submission
	for w := 0; w < workers; w++ {
		for t := 0; t < tasks; t++ {
			if ds.Attempted(w, t) {
				subs = append(subs, submission{w, t, ds.Response(w, t)})
			}
		}
	}
	src.Shuffle(len(subs), func(i, j int) { subs[i], subs[j] = subs[j], subs[i] })
	return subs, nil
}

// runDist is the distributed-cluster benchmark: for each node count it
// spins up that many in-process dist workers behind a coordinator, streams
// the submission stream through in concurrent batches, then times the pull
// + merge + EvaluateAll round and a distributed replicate sweep. The same
// submissions go to every node count, so the numbers are comparable
// within a run.
func runDist(nodeList string, shardsPerNode, workers, tasks, goroutines int, seed int64, quiet bool) ([]benchRecord, error) {
	nodeCounts, err := parseCountList("-dist", nodeList)
	if err != nil {
		return nil, err
	}
	if shardsPerNode < 1 {
		return nil, fmt.Errorf("-dist-shards: count must be positive, got %d", shardsPerNode)
	}
	goroutines = benchGoroutines(goroutines)
	subs, err := genSubmissions(workers, tasks, seed)
	if err != nil {
		return nil, err
	}

	const batchSize = 256
	var records []benchRecord
	for _, nodes := range nodeCounts {
		conns := make([]*dist.Conn, nodes)
		workerNodes := make([]*dist.Worker, nodes)
		for i := range conns {
			if workerNodes[i], err = dist.NewWorker(dist.WorkerOptions{Workers: workers, Shards: shardsPerNode}); err != nil {
				return nil, err
			}
			if conns[i], err = workerNodes[i].SelfConn(); err != nil {
				return nil, err
			}
		}
		coord, err := dist.NewCoordinator(workers, conns)
		if err != nil {
			return nil, err
		}

		start := time.Now()
		var wg sync.WaitGroup
		errs := make([]error, goroutines)
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				var batch []dist.Response
				flush := func() {
					if len(batch) > 0 && errs[g] == nil {
						errs[g] = coord.Ingest(batch)
						batch = batch[:0]
					}
				}
				for i := g; i < len(subs); i += goroutines {
					s := subs[i]
					batch = append(batch, dist.Response{Worker: s.w, Task: s.t, Answer: s.r})
					if len(batch) >= batchSize {
						flush()
					}
				}
				flush()
			}(g)
		}
		wg.Wait()
		elapsed := time.Since(start)
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}

		evalStart := time.Now()
		if _, err := coord.EvaluateAll(core.EvalOptions{Confidence: 0.9}); err != nil {
			return nil, err
		}
		evalElapsed := time.Since(evalStart)

		sweepStart := time.Now()
		spec := eval.SweepSpec{Kernel: eval.SweepWidth, Workers: 7, Tasks: 100, Replicates: 40, Seed: seed}
		if _, err := coord.RunSweep(spec, true); err != nil {
			return nil, err
		}
		sweepElapsed := time.Since(sweepStart)

		if err := coord.Close(); err != nil {
			return nil, err
		}
		for _, w := range workerNodes {
			if err := w.Close(); err != nil {
				return nil, err
			}
		}

		ops := float64(len(subs)) / elapsed.Seconds()
		if !quiet {
			fmt.Fprintf(os.Stderr, "crowdbench: dist nodes=%d: %d responses in %v (%.0f ops/sec), merge+evaluate %v, sweep %v\n",
				nodes, len(subs), elapsed.Round(time.Millisecond), ops, evalElapsed.Round(time.Millisecond), sweepElapsed.Round(time.Millisecond))
		}
		records = append(records,
			benchRecord{
				Experiment:  fmt.Sprintf("dist/nodes=%d", nodes),
				Seconds:     elapsed.Seconds(),
				Seed:        seed,
				GoMaxProcs:  runtime.GOMAXPROCS(0),
				Nodes:       nodes,
				Shards:      shardsPerNode,
				Goroutines:  goroutines,
				Responses:   len(subs),
				OpsPerSec:   ops,
				EvalSeconds: evalElapsed.Seconds(),
			},
			benchRecord{
				Experiment: fmt.Sprintf("distsweep/nodes=%d", nodes),
				Seconds:    sweepElapsed.Seconds(),
				Replicates: 40,
				Seed:       seed,
				Parallel:   true,
				GoMaxProcs: runtime.GOMAXPROCS(0),
				Nodes:      nodes,
			})
	}
	return records, nil
}

// latencyEvalRounds is how many EvaluateAll rounds the -latency benchmark
// times once the stream is ingested: enough samples for a stable p99 of
// the merged-solve path without dominating the run.
const latencyEvalRounds = 32

// runLatency is the closed-loop serving-latency benchmark the ROADMAP's
// serving-layer item asks for: it streams the synthetic submission stream
// through an in-process one-node cluster in concurrent batches, timing
// every coordinator Ingest round trip, then times latencyEvalRounds full
// EvaluateAll rounds — both into internal/obs fixed-bucket histograms, the
// same estimator a live crowdd exports on /metrics, so the committed
// quantiles and the scraped ones are directly comparable.
func runLatency(shardsPerNode, workers, tasks, goroutines int, seed int64, quiet bool) ([]benchRecord, error) {
	goroutines = benchGoroutines(goroutines)
	subs, err := genSubmissions(workers, tasks, seed)
	if err != nil {
		return nil, err
	}
	node, err := dist.NewWorker(dist.WorkerOptions{Workers: workers, Shards: shardsPerNode})
	if err != nil {
		return nil, err
	}
	conn, err := node.SelfConn()
	if err != nil {
		return nil, err
	}
	coord, err := dist.NewCoordinator(workers, []*dist.Conn{conn})
	if err != nil {
		return nil, err
	}

	ingestHist := obs.NewHistogram(nil)
	evalHist := obs.NewHistogram(nil)

	const batchSize = 256
	start := time.Now()
	var wg sync.WaitGroup
	errs := make([]error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			var batch []dist.Response
			flush := func() {
				if len(batch) > 0 && errs[g] == nil {
					t0 := time.Now()
					errs[g] = coord.Ingest(batch)
					ingestHist.Observe(time.Since(t0).Seconds())
					batch = batch[:0]
				}
			}
			for i := g; i < len(subs); i += goroutines {
				s := subs[i]
				batch = append(batch, dist.Response{Worker: s.w, Task: s.t, Answer: s.r})
				if len(batch) >= batchSize {
					flush()
				}
			}
			flush()
		}(g)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	evalStart := time.Now()
	for i := 0; i < latencyEvalRounds; i++ {
		t0 := time.Now()
		if _, err := coord.EvaluateAll(core.EvalOptions{Confidence: 0.9}); err != nil {
			return nil, err
		}
		evalHist.Observe(time.Since(t0).Seconds())
	}
	evalElapsed := time.Since(evalStart)

	if err := coord.Close(); err != nil {
		return nil, err
	}
	if err := node.Close(); err != nil {
		return nil, err
	}

	if !quiet {
		fmt.Fprintf(os.Stderr, "crowdbench: latency ingest: %d batches p50=%.4fs p95=%.4fs p99=%.4fs; evaluate: %d rounds p50=%.4fs p99=%.4fs\n",
			ingestHist.Count(), ingestHist.Quantile(0.5), ingestHist.Quantile(0.95), ingestHist.Quantile(0.99),
			evalHist.Count(), evalHist.Quantile(0.5), evalHist.Quantile(0.99))
	}
	return []benchRecord{
		{
			Experiment: "latency/ingest",
			Seconds:    elapsed.Seconds(),
			Seed:       seed,
			GoMaxProcs: runtime.GOMAXPROCS(0),
			Shards:     shardsPerNode,
			Goroutines: goroutines,
			Responses:  len(subs),
			OpsPerSec:  float64(len(subs)) / elapsed.Seconds(),
			Samples:    int(ingestHist.Count()),
			P50:        ingestHist.Quantile(0.5),
			P95:        ingestHist.Quantile(0.95),
			P99:        ingestHist.Quantile(0.99),
		},
		{
			Experiment: "latency/evaluate",
			Seconds:    evalElapsed.Seconds(),
			Seed:       seed,
			GoMaxProcs: runtime.GOMAXPROCS(0),
			Shards:     shardsPerNode,
			Responses:  len(subs),
			OpsPerSec:  float64(latencyEvalRounds) / evalElapsed.Seconds(),
			Samples:    int(evalHist.Count()),
			P50:        evalHist.Quantile(0.5),
			P95:        evalHist.Quantile(0.95),
			P99:        evalHist.Quantile(0.99),
		},
	}, nil
}

// writeBenchJSON records the timing trajectory for tooling. The write is
// atomic — encode to a temp file in the target directory, then rename —
// so an interrupted run can never truncate a committed BENCH_*.json: the
// previous series survives intact until the new one is fully written.
func writeBenchJSON(path string, records []benchRecord) error {
	f, err := os.CreateTemp(filepath.Dir(path), "."+filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	defer os.Remove(tmp) // no-op after a successful rename
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(records); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// openOutput resolves the output destination: stdout when no -o is given,
// a single file for one experiment, or per-experiment files under a prefix
// for -experiment all.
func openOutput(out, name, format string, multi bool) (io.Writer, func() error, error) {
	if out == "" {
		return os.Stdout, func() error { return nil }, nil
	}
	path := out
	if multi {
		ext := map[string]string{"table": "txt", "csv": "csv", "gnuplot": "dat"}[format]
		if strings.HasSuffix(out, string(os.PathSeparator)) {
			path = filepath.Join(out, name+"."+ext)
		} else {
			path = out + name + "." + ext
		}
	}
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, nil, err
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, nil, err
	}
	return f, f.Close, nil
}
