// Command crowdbench regenerates the evaluation figures of "Comprehensive
// and Reliable Crowd Assessment Algorithms" (ICDE 2015).
//
// Usage:
//
//	crowdbench -experiment fig1 [-replicates 500] [-seed 1] [-format table] [-o out.dat]
//	crowdbench -experiment all  [-replicates 50] [-parallel]
//	crowdbench -experiment all  -replicates 20 -parallel -benchjson BENCH_1.json
//	crowdbench -list
//
// -parallel fans replicates out over every CPU; the per-replicate seeding
// and merge order are unchanged, so the output is byte-identical to a
// serial run. -benchjson additionally records each experiment's wall-clock
// time as machine-readable JSON, so the performance trajectory of the
// runners can be tracked across commits.
//
// With -experiment all, every figure is regenerated in sequence; output for
// experiment NAME goes to <out-prefix>NAME.<ext> when -o is given a prefix
// ending in a path separator or to stdout otherwise.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"crowdassess/internal/eval"
	"crowdassess/internal/report"
)

// benchRecord is one experiment's machine-readable timing, written by
// -benchjson so the performance trajectory of the runners is recorded
// across commits.
type benchRecord struct {
	Experiment string  `json:"experiment"`
	Seconds    float64 `json:"seconds"`
	Replicates int     `json:"replicates"`
	Seed       int64   `json:"seed"`
	Parallel   bool    `json:"parallel"`
	Failures   int     `json:"failures"`
	GoMaxProcs int     `json:"gomaxprocs"`
}

func main() {
	var (
		experiment = flag.String("experiment", "", "experiment to run (fig1…fig5c, or \"all\")")
		replicates = flag.Int("replicates", 0, "replicates per configuration (0 = paper's default: 500 for synthetic figures)")
		seed       = flag.Int64("seed", 1, "base random seed")
		format     = flag.String("format", "table", "output format: table, csv, or gnuplot")
		out        = flag.String("o", "", "output file (or directory prefix with -experiment all); default stdout")
		list       = flag.Bool("list", false, "list available experiments and exit")
		quiet      = flag.Bool("quiet", false, "suppress progress messages")
		parallel   = flag.Bool("parallel", false, "fan replicates out over all CPUs (results are byte-identical to serial)")
		benchjson  = flag.String("benchjson", "", "also write per-experiment wall-clock timings as JSON to this file (e.g. BENCH_1.json)")
	)
	flag.Parse()

	if *list {
		fmt.Println("available experiments:")
		for _, name := range eval.Experiments() {
			fmt.Printf("  %s\n", name)
		}
		return
	}
	if *experiment == "" {
		fmt.Fprintln(os.Stderr, "crowdbench: -experiment is required (try -list)")
		flag.Usage()
		os.Exit(2)
	}

	names := []string{*experiment}
	if *experiment == "all" {
		names = eval.Experiments()
	}
	params := eval.Params{Replicates: *replicates, Seed: *seed, Parallel: *parallel}
	var records []benchRecord
	for _, name := range names {
		start := time.Now()
		res, err := eval.Run(name, params)
		if err != nil {
			fmt.Fprintf(os.Stderr, "crowdbench: %s: %v\n", name, err)
			os.Exit(1)
		}
		elapsed := time.Since(start)
		if !*quiet {
			fmt.Fprintf(os.Stderr, "crowdbench: %s done in %v (%d degenerate samples skipped)\n",
				name, elapsed.Round(time.Millisecond), res.Failures)
		}
		records = append(records, benchRecord{
			Experiment: name,
			Seconds:    elapsed.Seconds(),
			Replicates: *replicates,
			Seed:       *seed,
			Parallel:   *parallel,
			Failures:   res.Failures,
			GoMaxProcs: runtime.GOMAXPROCS(0),
		})
		w, closeFn, err := openOutput(*out, name, *format, len(names) > 1)
		if err != nil {
			fmt.Fprintf(os.Stderr, "crowdbench: %v\n", err)
			os.Exit(1)
		}
		if err := report.Write(w, *format, res); err != nil {
			fmt.Fprintf(os.Stderr, "crowdbench: %v\n", err)
			os.Exit(1)
		}
		if err := closeFn(); err != nil {
			fmt.Fprintf(os.Stderr, "crowdbench: %v\n", err)
			os.Exit(1)
		}
	}
	if *benchjson != "" {
		if err := writeBenchJSON(*benchjson, records); err != nil {
			fmt.Fprintf(os.Stderr, "crowdbench: %v\n", err)
			os.Exit(1)
		}
	}
}

// writeBenchJSON records the timing trajectory for tooling.
func writeBenchJSON(path string, records []benchRecord) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(records); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// openOutput resolves the output destination: stdout when no -o is given,
// a single file for one experiment, or per-experiment files under a prefix
// for -experiment all.
func openOutput(out, name, format string, multi bool) (io.Writer, func() error, error) {
	if out == "" {
		return os.Stdout, func() error { return nil }, nil
	}
	path := out
	if multi {
		ext := map[string]string{"table": "txt", "csv": "csv", "gnuplot": "dat"}[format]
		if strings.HasSuffix(out, string(os.PathSeparator)) {
			path = filepath.Join(out, name+"."+ext)
		} else {
			path = out + name + "." + ext
		}
	}
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, nil, err
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, nil, err
	}
	return f, f.Close, nil
}
