// Command crowdbench regenerates the evaluation figures of "Comprehensive
// and Reliable Crowd Assessment Algorithms" (ICDE 2015).
//
// Usage:
//
//	crowdbench -experiment fig1 [-replicates 500] [-seed 1] [-format table] [-o out.dat]
//	crowdbench -experiment all  [-replicates 50] [-parallel]
//	crowdbench -experiment all  -replicates 20 -parallel -benchjson BENCH_1.json
//	crowdbench -ingest 1,2,4,8 -ingest-goroutines 8 -benchjson BENCH_3.json
//	crowdbench -list
//
// -parallel fans replicates out over every CPU; the per-replicate seeding
// and merge order are unchanged, so the output is byte-identical to a
// serial run. -benchjson additionally records each experiment's wall-clock
// time as machine-readable JSON, so the performance trajectory of the
// runners can be tracked across commits.
//
// -ingest switches to the streaming-ingestion benchmark: for each listed
// shard count it streams one synthetic crowd concurrently into a
// core.ShardedIncremental and reports ingestion throughput (ops/sec vs
// shard count — the sharded evaluator's scaling claim) plus the merge +
// EvaluateAll time that follows. The same submissions go to every shard
// count, so the numbers are comparable within a run.
//
// With -experiment all, every figure is regenerated in sequence; output for
// experiment NAME goes to <out-prefix>NAME.<ext> when -o is given a prefix
// ending in a path separator or to stdout otherwise.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"

	"crowdassess/internal/core"
	"crowdassess/internal/crowd"
	"crowdassess/internal/eval"
	"crowdassess/internal/randx"
	"crowdassess/internal/report"
	"crowdassess/internal/sim"
)

// benchRecord is one experiment's machine-readable timing, written by
// -benchjson so the performance trajectory of the runners is recorded
// across commits. The ingestion benchmark fills the streaming fields;
// figure runs leave them zero (omitted from the JSON).
type benchRecord struct {
	Experiment string  `json:"experiment"`
	Seconds    float64 `json:"seconds"`
	Replicates int     `json:"replicates,omitempty"`
	Seed       int64   `json:"seed"`
	Parallel   bool    `json:"parallel,omitempty"`
	Failures   int     `json:"failures,omitempty"`
	GoMaxProcs int     `json:"gomaxprocs"`

	// Streaming-ingestion fields (-ingest).
	Shards      int     `json:"shards,omitempty"`
	Goroutines  int     `json:"goroutines,omitempty"`
	Responses   int     `json:"responses,omitempty"`
	OpsPerSec   float64 `json:"ops_per_sec,omitempty"`
	EvalSeconds float64 `json:"eval_seconds,omitempty"`
}

func main() {
	var (
		experiment = flag.String("experiment", "", "experiment to run (fig1…fig5c, or \"all\")")
		replicates = flag.Int("replicates", 0, "replicates per configuration (0 = paper's default: 500 for synthetic figures)")
		seed       = flag.Int64("seed", 1, "base random seed")
		format     = flag.String("format", "table", "output format: table, csv, or gnuplot")
		out        = flag.String("o", "", "output file (or directory prefix with -experiment all); default stdout")
		list       = flag.Bool("list", false, "list available experiments and exit")
		quiet      = flag.Bool("quiet", false, "suppress progress messages")
		parallel   = flag.Bool("parallel", false, "fan replicates out over all CPUs (results are byte-identical to serial)")
		benchjson  = flag.String("benchjson", "", "also write per-experiment wall-clock timings as JSON to this file (e.g. BENCH_1.json)")

		ingest           = flag.String("ingest", "", "run the streaming-ingestion benchmark over these comma-separated shard counts (e.g. 1,2,4,8)")
		ingestWorkers    = flag.Int("ingest-workers", 64, "ingestion benchmark: crowd size")
		ingestTasks      = flag.Int("ingest-tasks", 4000, "ingestion benchmark: task count")
		ingestGoroutines = flag.Int("ingest-goroutines", 0, "ingestion benchmark: concurrent submitters (0 = GOMAXPROCS, min 8)")
	)
	flag.Parse()

	if *list {
		fmt.Println("available experiments:")
		for _, name := range eval.Experiments() {
			fmt.Printf("  %s\n", name)
		}
		return
	}
	if *ingest != "" {
		records, err := runIngest(*ingest, *ingestWorkers, *ingestTasks, *ingestGoroutines, *seed, *quiet)
		if err != nil {
			fmt.Fprintf(os.Stderr, "crowdbench: %v\n", err)
			os.Exit(1)
		}
		if *benchjson != "" {
			if err := writeBenchJSON(*benchjson, records); err != nil {
				fmt.Fprintf(os.Stderr, "crowdbench: %v\n", err)
				os.Exit(1)
			}
		}
		return
	}
	if *experiment == "" {
		fmt.Fprintln(os.Stderr, "crowdbench: -experiment is required (try -list)")
		flag.Usage()
		os.Exit(2)
	}

	names := []string{*experiment}
	if *experiment == "all" {
		names = eval.Experiments()
	}
	params := eval.Params{Replicates: *replicates, Seed: *seed, Parallel: *parallel}
	var records []benchRecord
	for _, name := range names {
		start := time.Now()
		res, err := eval.Run(name, params)
		if err != nil {
			fmt.Fprintf(os.Stderr, "crowdbench: %s: %v\n", name, err)
			os.Exit(1)
		}
		elapsed := time.Since(start)
		if !*quiet {
			fmt.Fprintf(os.Stderr, "crowdbench: %s done in %v (%d degenerate samples skipped)\n",
				name, elapsed.Round(time.Millisecond), res.Failures)
		}
		records = append(records, benchRecord{
			Experiment: name,
			Seconds:    elapsed.Seconds(),
			Replicates: *replicates,
			Seed:       *seed,
			Parallel:   *parallel,
			Failures:   res.Failures,
			GoMaxProcs: runtime.GOMAXPROCS(0),
		})
		w, closeFn, err := openOutput(*out, name, *format, len(names) > 1)
		if err != nil {
			fmt.Fprintf(os.Stderr, "crowdbench: %v\n", err)
			os.Exit(1)
		}
		if err := report.Write(w, *format, res); err != nil {
			fmt.Fprintf(os.Stderr, "crowdbench: %v\n", err)
			os.Exit(1)
		}
		if err := closeFn(); err != nil {
			fmt.Fprintf(os.Stderr, "crowdbench: %v\n", err)
			os.Exit(1)
		}
	}
	if *benchjson != "" {
		if err := writeBenchJSON(*benchjson, records); err != nil {
			fmt.Fprintf(os.Stderr, "crowdbench: %v\n", err)
			os.Exit(1)
		}
	}
}

// runIngest is the streaming-ingestion benchmark: the same shuffled
// submission stream is ingested concurrently into a ShardedIncremental at
// each requested shard count, and throughput plus the follow-up merge +
// EvaluateAll time are recorded.
func runIngest(shardList string, workers, tasks, goroutines int, seed int64, quiet bool) ([]benchRecord, error) {
	var shardCounts []int
	for _, f := range strings.Split(shardList, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("-ingest: bad shard count %q", f)
		}
		shardCounts = append(shardCounts, n)
	}
	if goroutines <= 0 {
		goroutines = runtime.GOMAXPROCS(0)
		// Even on small machines, exercise real interleaving: the benchmark
		// measures lock sharding, not just CPU scaling.
		if goroutines < 8 {
			goroutines = 8
		}
	}

	src := randx.NewSource(seed)
	ds, _, err := sim.Binary{Tasks: tasks, Workers: workers, Density: 0.8}.Generate(src)
	if err != nil {
		return nil, err
	}
	type submission struct {
		w, t int
		r    crowd.Response
	}
	var subs []submission
	for w := 0; w < workers; w++ {
		for t := 0; t < tasks; t++ {
			if ds.Attempted(w, t) {
				subs = append(subs, submission{w, t, ds.Response(w, t)})
			}
		}
	}
	src.Shuffle(len(subs), func(i, j int) { subs[i], subs[j] = subs[j], subs[i] })

	var records []benchRecord
	for _, shards := range shardCounts {
		inc, err := core.NewShardedIncremental(workers, shards)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		var wg sync.WaitGroup
		errs := make([]error, goroutines)
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := g; i < len(subs); i += goroutines {
					s := subs[i]
					if err := inc.Add(s.w, s.t, s.r); err != nil {
						errs[g] = err
						return
					}
				}
			}(g)
		}
		wg.Wait()
		elapsed := time.Since(start)
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
		evalStart := time.Now()
		if _, err := inc.EvaluateAll(core.EvalOptions{Confidence: 0.9}); err != nil {
			return nil, err
		}
		evalElapsed := time.Since(evalStart)
		ops := float64(len(subs)) / elapsed.Seconds()
		if !quiet {
			fmt.Fprintf(os.Stderr, "crowdbench: ingest shards=%d: %d responses in %v (%.0f ops/sec), merge+evaluate %v\n",
				shards, len(subs), elapsed.Round(time.Millisecond), ops, evalElapsed.Round(time.Millisecond))
		}
		records = append(records, benchRecord{
			Experiment:  fmt.Sprintf("ingest/shards=%d", shards),
			Seconds:     elapsed.Seconds(),
			Seed:        seed,
			GoMaxProcs:  runtime.GOMAXPROCS(0),
			Shards:      shards,
			Goroutines:  goroutines,
			Responses:   len(subs),
			OpsPerSec:   ops,
			EvalSeconds: evalElapsed.Seconds(),
		})
	}
	return records, nil
}

// writeBenchJSON records the timing trajectory for tooling.
func writeBenchJSON(path string, records []benchRecord) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(records); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// openOutput resolves the output destination: stdout when no -o is given,
// a single file for one experiment, or per-experiment files under a prefix
// for -experiment all.
func openOutput(out, name, format string, multi bool) (io.Writer, func() error, error) {
	if out == "" {
		return os.Stdout, func() error { return nil }, nil
	}
	path := out
	if multi {
		ext := map[string]string{"table": "txt", "csv": "csv", "gnuplot": "dat"}[format]
		if strings.HasSuffix(out, string(os.PathSeparator)) {
			path = filepath.Join(out, name+"."+ext)
		} else {
			path = out + name + "." + ext
		}
	}
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, nil, err
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, nil, err
	}
	return f, f.Close, nil
}
