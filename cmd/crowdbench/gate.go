// The gateway load benchmark (-gate): a closed loop of concurrent
// clients driving a live crowdgate HTTP server end to end — real TCP
// listener, real client package, batch ingest plus worker-quality
// queries — recording per-request quantiles and the fraction of
// requests the gateway shed with 429 before admission.
package main

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"crowdassess/client"
	"crowdassess/internal/gate"
	"crowdassess/internal/obs"
)

// gateBatchSize is the ingest batch size the closed loop ships — the
// same 256 the -dist and -latency benchmarks use, so the per-request
// numbers stay comparable across the serving stack's layers.
const gateBatchSize = 256

// gateQueryRounds is how many GET /v1/workers/{id} calls each submitter
// issues once ingest completes: enough samples for a stable p99 of the
// single-worker evaluation path.
const gateQueryRounds = 64

// runGate is the closed-loop gateway benchmark: the synthetic
// submission stream is pushed through a live crowdgate in concurrent
// ingest batches (shed batches are retried until admitted, counting
// toward the shed rate), then every submitter hammers the worker-query
// route, then one pool review runs. Ingest and query latencies land in
// internal/obs fixed-bucket histograms — the same estimator the live
// gateway exports on /metrics — and the record carries p50/p95/p99 plus
// the shed rate.
func runGate(shards, workers, tasks, goroutines, queueDepth int, seed int64, quiet bool) ([]benchRecord, error) {
	goroutines = benchGoroutines(goroutines)
	subs, err := genSubmissions(workers, tasks, seed)
	if err != nil {
		return nil, err
	}
	const token = "bench-token"
	gw, err := gate.New(gate.Options{
		Tenants:    []gate.TenantConfig{{Name: "bench", Token: token, Workers: workers, Shards: shards}},
		QueueDepth: queueDepth,
	})
	if err != nil {
		return nil, err
	}
	srv := httptest.NewServer(gw)
	defer srv.Close()

	ingestHist := obs.NewHistogram(nil)
	queryHist := obs.NewHistogram(nil)
	var sheds, requests atomic.Int64

	// Retries are handled by the loop below so every attempt — including
	// shed ones — is counted and timed; the client must not hide them.
	newClient := func() *client.Client {
		return client.New(srv.URL, token).
			WithRetry(client.RetryPolicy{}).
			WithHTTPClient(&http.Client{Timeout: 30 * time.Second})
	}

	ctx := context.Background()
	start := time.Now()
	var wg sync.WaitGroup
	errs := make([]error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c := newClient()
			var batch []client.Response
			flush := func() {
				for len(batch) > 0 && errs[g] == nil {
					t0 := time.Now()
					_, err := c.IngestBatch(ctx, batch)
					ingestHist.Observe(time.Since(t0).Seconds())
					requests.Add(1)
					var ae *client.APIError
					if errors.As(err, &ae) && ae.Status == http.StatusTooManyRequests {
						// Shed before admission: nothing was recorded, the
						// same batch goes again after the advertised pause.
						sheds.Add(1)
						time.Sleep(ae.RetryAfter)
						continue
					}
					errs[g] = err
					batch = batch[:0]
				}
			}
			for i := g; i < len(subs); i += goroutines {
				s := subs[i]
				batch = append(batch, client.Response{Worker: s.w, Task: s.t, Answer: int(s.r)})
				if len(batch) >= gateBatchSize {
					flush()
				}
			}
			flush()
		}(g)
	}
	wg.Wait()
	ingestElapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	queryStart := time.Now()
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c := newClient()
			for i := 0; i < gateQueryRounds; i++ {
				t0 := time.Now()
				_, err := c.WorkerInfo(ctx, (g*gateQueryRounds+i)%workers)
				queryHist.Observe(time.Since(t0).Seconds())
				requests.Add(1)
				var ae *client.APIError
				if errors.As(err, &ae) && ae.Status == http.StatusTooManyRequests {
					sheds.Add(1)
					continue // a query carries no state; skipping is fine
				}
				if err != nil {
					errs[g] = err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	queryElapsed := time.Since(queryStart)
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	if _, err := newClient().Review(ctx); err != nil {
		return nil, err
	}

	shedRate := float64(sheds.Load()) / float64(requests.Load())
	if !quiet {
		fmt.Fprintf(os.Stderr, "crowdbench: gate ingest: %d batches p50=%.4fs p95=%.4fs p99=%.4fs; query: %d calls p50=%.4fs p99=%.4fs; shed rate %.3f\n",
			ingestHist.Count(), ingestHist.Quantile(0.5), ingestHist.Quantile(0.95), ingestHist.Quantile(0.99),
			queryHist.Count(), queryHist.Quantile(0.5), queryHist.Quantile(0.99), shedRate)
	}
	return []benchRecord{
		{
			Experiment: "gate/ingest",
			Seconds:    ingestElapsed.Seconds(),
			Seed:       seed,
			GoMaxProcs: runtime.GOMAXPROCS(0),
			Shards:     shards,
			Goroutines: goroutines,
			Responses:  len(subs),
			OpsPerSec:  float64(len(subs)) / ingestElapsed.Seconds(),
			Samples:    int(ingestHist.Count()),
			P50:        ingestHist.Quantile(0.5),
			P95:        ingestHist.Quantile(0.95),
			P99:        ingestHist.Quantile(0.99),
			ShedRate:   shedRate,
		},
		{
			Experiment: "gate/query",
			Seconds:    queryElapsed.Seconds(),
			Seed:       seed,
			GoMaxProcs: runtime.GOMAXPROCS(0),
			Shards:     shards,
			Goroutines: goroutines,
			OpsPerSec:  float64(queryHist.Count()) / queryElapsed.Seconds(),
			Samples:    int(queryHist.Count()),
			P50:        queryHist.Quantile(0.5),
			P95:        queryHist.Quantile(0.95),
			P99:        queryHist.Quantile(0.99),
		},
	}, nil
}
