package main

import (
	"reflect"
	"strings"
	"testing"
)

// TestParseCountList: the -ingest/-dist count lists reject malformed,
// non-positive and absurd values with errors that name the flag, instead
// of propagating them into the benchmark.
func TestParseCountList(t *testing.T) {
	good := []struct {
		in   string
		want []int
	}{
		{"1", []int{1}},
		{"1,2,4,8", []int{1, 2, 4, 8}},
		{" 2 , 4 ", []int{2, 4}},
	}
	for _, tc := range good {
		got, err := parseCountList("-ingest", tc.in)
		if err != nil || !reflect.DeepEqual(got, tc.want) {
			t.Errorf("parseCountList(%q) = %v, %v; want %v", tc.in, got, err, tc.want)
		}
	}
	bad := []string{
		"",                         // empty list
		"1,,2",                     // empty field
		"1,2,",                     // trailing comma
		"0",                        // non-positive
		"-4",                       // negative
		"2,-1",                     // negative in the middle
		"abc",                      // not a number
		"3.5",                      // not an integer
		"1e3",                      // scientific notation is not a count
		"999999999999999999999999", // overflow
		"99999",                    // beyond the sanity cap
	}
	for _, in := range bad {
		got, err := parseCountList("-dist", in)
		if err == nil {
			t.Errorf("parseCountList(%q) accepted: %v", in, got)
			continue
		}
		if !strings.Contains(err.Error(), "-dist") {
			t.Errorf("parseCountList(%q) error %q does not name the flag", in, err)
		}
	}
}
