package main

import (
	"reflect"
	"strings"
	"testing"
)

// TestParseCountList: the -ingest/-dist count lists reject malformed,
// non-positive and absurd values with errors that name the flag, instead
// of propagating them into the benchmark.
func TestParseCountList(t *testing.T) {
	good := []struct {
		in   string
		want []int
	}{
		{"1", []int{1}},
		{"1,2,4,8", []int{1, 2, 4, 8}},
		{" 2 , 4 ", []int{2, 4}},
	}
	for _, tc := range good {
		got, err := parseCountList("-ingest", tc.in)
		if err != nil || !reflect.DeepEqual(got, tc.want) {
			t.Errorf("parseCountList(%q) = %v, %v; want %v", tc.in, got, err, tc.want)
		}
	}
	bad := []string{
		"",                         // empty list
		"1,,2",                     // empty field
		"1,2,",                     // trailing comma
		"0",                        // non-positive
		"-4",                       // negative
		"2,-1",                     // negative in the middle
		"abc",                      // not a number
		"3.5",                      // not an integer
		"1e3",                      // scientific notation is not a count
		"999999999999999999999999", // overflow
		"99999",                    // beyond the sanity cap
	}
	for _, in := range bad {
		got, err := parseCountList("-dist", in)
		if err == nil {
			t.Errorf("parseCountList(%q) accepted: %v", in, got)
			continue
		}
		if !strings.Contains(err.Error(), "-dist") {
			t.Errorf("parseCountList(%q) error %q does not name the flag", in, err)
		}
	}
}

// TestValidateCounts: the count flags reject nonsense with errors that
// name the flag, while zero keeps its documented default-selecting
// meaning where one exists.
func TestValidateCounts(t *testing.T) {
	if err := validateCounts(0, 64, 4000, 0, 2); err != nil {
		t.Errorf("defaults rejected: %v", err)
	}
	if err := validateCounts(500, 8, 100, 4, 1); err != nil {
		t.Errorf("valid counts rejected: %v", err)
	}
	cases := []struct {
		name                                           string
		replicates, workers, tasks, goroutines, shards int
		flag                                           string
	}{
		{"negative replicates", -1, 64, 4000, 0, 2, "-replicates"},
		{"zero workers", 0, 0, 4000, 0, 2, "-ingest-workers"},
		{"negative tasks", 0, 64, -5, 0, 2, "-ingest-tasks"},
		{"negative goroutines", 0, 64, 4000, -1, 2, "-ingest-goroutines"},
		{"zero shards", 0, 64, 4000, 0, 0, "-dist-shards"},
	}
	for _, c := range cases {
		err := validateCounts(c.replicates, c.workers, c.tasks, c.goroutines, c.shards)
		if err == nil || !strings.Contains(err.Error(), c.flag) {
			t.Errorf("%s: err = %v, want an error naming %s", c.name, err, c.flag)
		}
	}
}
