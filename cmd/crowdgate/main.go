// Command crowdgate is the public front door of the assessment service:
// a multi-tenant HTTP/JSON gateway (internal/gate) serving the /v1 API —
// batch ingest, worker-quality queries, pool review — with static-token
// auth, per-tenant rate limits and admission-control backpressure.
//
//	crowdgate -listen :8080 -tenants tenants.json [-queue 64] [-pprof]
//
// Tenants are declared in a JSON file (see docs/operations.md):
//
//	{"tenants": [
//	  {"name": "acme", "token": "s3cret", "workers": 40, "shards": 4,
//	   "rate_per_sec": 200, "burst": 50},
//	  {"name": "beta", "token_env": "BETA_TOKEN", "workers": 25,
//	   "cluster": "a:7333,b:7333;c:7333,d:7333"}
//	]}
//
// A tenant with a "cluster" spec fronts a distributed deployment: the
// gateway dials every replica, becomes the cluster's (single) coordinator
// and runs the self-healing monitor over it. Tenants without one get an
// in-process sharded evaluator. Either way the tenant's statistics are
// its own — the isolation the gate package enforces by construction.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"crowdassess/internal/dist"
	"crowdassess/internal/gate"
	"crowdassess/internal/obs"
	"crowdassess/internal/pool"
)

// tenantSpec is one tenant entry in the -tenants JSON file.
type tenantSpec struct {
	// Name identifies the tenant in metrics and logs.
	Name string `json:"name"`
	// Token is the tenant's static bearer token; TokenEnv names an
	// environment variable to read it from instead (preferred — tokens
	// in config files end up in version control).
	Token    string `json:"token"`
	TokenEnv string `json:"token_env"`
	// Workers is the tenant's crowd size.
	Workers int `json:"workers"`
	// Shards is the local evaluator's shard count (ignored with Cluster).
	Shards int `json:"shards"`
	// RatePerSec and Burst configure the tenant's token bucket; a zero
	// rate means unlimited.
	RatePerSec float64 `json:"rate_per_sec"`
	Burst      int     `json:"burst"`
	// Cluster is a crowdd replica spec ("a:7333,b:7333;c:7333,d:7333" —
	// ';' separates task slices, ',' a slice's replicas). When set, this
	// tenant fronts that cluster instead of a local evaluator.
	Cluster string `json:"cluster"`
	// MinResponses overrides the pool policy's decision floor when > 0.
	MinResponses int `json:"min_responses"`
}

// gateConfig is the -tenants file shape.
type gateConfig struct {
	Tenants []tenantSpec `json:"tenants"`
}

// loadConfig reads and validates the tenant config file.
func loadConfig(path string) (gateConfig, error) {
	var cfg gateConfig
	raw, err := os.ReadFile(path)
	if err != nil {
		return cfg, err
	}
	dec := json.NewDecoder(strings.NewReader(string(raw)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&cfg); err != nil {
		return cfg, fmt.Errorf("%s: %w", path, err)
	}
	if len(cfg.Tenants) == 0 {
		return cfg, fmt.Errorf("%s: no tenants declared", path)
	}
	return cfg, nil
}

// resolveToken returns the tenant's bearer token, preferring token_env.
func resolveToken(ts tenantSpec) (string, error) {
	if ts.TokenEnv != "" {
		tok := os.Getenv(ts.TokenEnv)
		if tok == "" {
			return "", fmt.Errorf("tenant %q: environment variable %s is empty", ts.Name, ts.TokenEnv)
		}
		return tok, nil
	}
	if ts.Token == "" {
		return "", fmt.Errorf("tenant %q: token or token_env is required", ts.Name)
	}
	return ts.Token, nil
}

// parseGroups splits a cluster spec into replica address groups:
// "a,b;c,d" → [[a b] [c d]] — the same grammar crowdd -coordinate uses.
func parseGroups(spec string) ([][]string, error) {
	var groups [][]string
	for _, g := range strings.Split(spec, ";") {
		if strings.TrimSpace(g) == "" {
			return nil, fmt.Errorf("empty replica group in cluster spec %q", spec)
		}
		var reps []string
		for _, a := range strings.Split(g, ",") {
			a = strings.TrimSpace(a)
			if a == "" {
				return nil, fmt.Errorf("empty replica address in cluster spec %q", spec)
			}
			reps = append(reps, a)
		}
		groups = append(groups, reps)
	}
	return groups, nil
}

// buildCluster dials every replica and assembles the tenant's
// coordinator, each slot wired with a dialer so policy retries and the
// monitor's reseed can reconnect.
func buildCluster(workers int, groups [][]string, policy dist.Policy) (*dist.Coordinator, error) {
	specs := make([][]dist.ReplicaSpec, len(groups))
	var open []*dist.Conn
	fail := func(err error) (*dist.Coordinator, error) {
		for _, c := range open {
			c.Close()
		}
		return nil, err
	}
	for si, g := range groups {
		for _, addr := range g {
			conn, err := dist.DialTCPTimeout(addr, policy.DialTimeout)
			if err != nil {
				return fail(err)
			}
			open = append(open, conn)
			specs[si] = append(specs[si], dist.ReplicaSpec{
				Conn: conn,
				Dial: func() (*dist.Conn, error) { return dist.DialTCPTimeout(addr, policy.DialTimeout) },
			})
		}
	}
	// NewCluster takes ownership of every connection from here on.
	return dist.NewCluster(workers, specs, policy)
}

// buildTenant turns one config entry into a gate.TenantConfig, returning
// a cleanup for any cluster resources it opened.
func buildTenant(ts tenantSpec, reg *obs.Registry) (gate.TenantConfig, func(), error) {
	none := func() {}
	if ts.Name == "" {
		return gate.TenantConfig{}, none, fmt.Errorf("tenant with empty name")
	}
	token, err := resolveToken(ts)
	if err != nil {
		return gate.TenantConfig{}, none, err
	}
	if ts.Workers <= 0 {
		return gate.TenantConfig{}, none, fmt.Errorf("tenant %q: positive workers required", ts.Name)
	}
	policy := pool.DefaultPolicy()
	if ts.MinResponses > 0 {
		policy.MinResponses = ts.MinResponses
	}
	tc := gate.TenantConfig{
		Name: ts.Name, Token: token,
		Workers: ts.Workers, Shards: ts.Shards, Policy: &policy,
		RatePerSec: ts.RatePerSec, Burst: ts.Burst,
	}
	if ts.Cluster == "" {
		return tc, none, nil
	}
	groups, err := parseGroups(ts.Cluster)
	if err != nil {
		return gate.TenantConfig{}, none, fmt.Errorf("tenant %q: %w", ts.Name, err)
	}
	coord, err := buildCluster(ts.Workers, groups, dist.DefaultPolicy())
	if err != nil {
		return gate.TenantConfig{}, none, fmt.Errorf("tenant %q: dialing cluster: %w", ts.Name, err)
	}
	coord.Instrument(reg)
	coord.StartMonitor(dist.MonitorOptions{
		OnEvent: dist.ChainEvents(dist.EventMetrics(reg), func(e dist.Event) {
			fmt.Fprintf(os.Stderr, "crowdgate: tenant %s: cluster: %s\n", ts.Name, e)
		}),
	}).Instrument(reg)
	ce := dist.NewClusterEvaluator(coord, 0)
	mgr, err := pool.NewManagerWith(ce, policy)
	if err != nil {
		coord.Close()
		return gate.TenantConfig{}, none, fmt.Errorf("tenant %q: %w", ts.Name, err)
	}
	mgr.Instrument(reg)
	tc.Manager = mgr
	tc.Flush = ce.Flush
	return tc, func() { coord.Close() }, nil
}

func run() error {
	listen := flag.String("listen", "", "address to serve the /v1 API on (required), e.g. :8080")
	tenantsPath := flag.String("tenants", "", "path to the tenant config JSON file (required)")
	queue := flag.Int("queue", 0, "admission queue depth; requests beyond it are shed with 429 (0 = default)")
	retryAfter := flag.Duration("retry-after", 0, "Retry-After hint on shed responses (0 = default 1s)")
	pprofOn := flag.Bool("pprof", false, "expose /debug/pprof/ profiling handlers")
	flag.Parse()
	if *listen == "" {
		return fmt.Errorf("-listen is required")
	}
	if *tenantsPath == "" {
		return fmt.Errorf("-tenants is required")
	}
	cfg, err := loadConfig(*tenantsPath)
	if err != nil {
		return err
	}

	reg := obs.NewRegistry(nil)
	reg.GaugeFunc("process_uptime_seconds",
		"Seconds since the gateway came up.",
		func() float64 { return reg.Uptime().Seconds() })
	logger := obs.NewLogger(os.Stderr, "crowdgate", slog.LevelInfo)

	opts := gate.Options{QueueDepth: *queue, RetryAfter: *retryAfter, Registry: reg, Logger: logger}
	var cleanups []func()
	defer func() {
		for _, c := range cleanups {
			c()
		}
	}()
	for _, ts := range cfg.Tenants {
		tc, cleanup, err := buildTenant(ts, reg)
		if err != nil {
			return err
		}
		cleanups = append(cleanups, cleanup)
		opts.Tenants = append(opts.Tenants, tc)
		backend := "local"
		if ts.Cluster != "" {
			backend = "cluster " + ts.Cluster
		}
		fmt.Fprintf(os.Stderr, "crowdgate: tenant %s: %d workers, %s\n", ts.Name, ts.Workers, backend)
	}
	gw, err := gate.New(opts)
	if err != nil {
		return err
	}

	mux := http.NewServeMux()
	mux.Handle("/v1/", gw)
	mux.Handle("/metrics", reg)
	if *pprofOn {
		attachPprof(mux)
	}
	srv := &http.Server{Addr: *listen, Handler: obs.HTTPMiddleware(mux, logger, reg, "gate")}

	serveErr := make(chan error, 1)
	go func() {
		if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			serveErr <- err
			return
		}
		serveErr <- nil
	}()
	fmt.Fprintf(os.Stderr, "crowdgate: serving /v1 for %d tenants on %s\n", len(cfg.Tenants), *listen)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-serveErr:
		return err
	case <-sig:
	}
	fmt.Fprintf(os.Stderr, "crowdgate: shutting down\n")
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	// In-flight requests get the grace period; the listener closes now.
	if err := srv.Shutdown(ctx); err != nil {
		return err
	}
	return <-serveErr
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "crowdgate: %v\n", err)
		os.Exit(1)
	}
}
