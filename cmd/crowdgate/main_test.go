package main

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func writeConfig(t *testing.T, body string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "tenants.json")
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatalf("writing config: %v", err)
	}
	return path
}

func TestLoadConfig(t *testing.T) {
	path := writeConfig(t, `{"tenants": [
		{"name": "acme", "token": "s3cret", "workers": 16, "shards": 4,
		 "rate_per_sec": 200, "burst": 50, "min_responses": 10},
		{"name": "beta", "token_env": "BETA_TOKEN", "workers": 8,
		 "cluster": "a:7333,b:7333;c:7333"}
	]}`)
	cfg, err := loadConfig(path)
	if err != nil {
		t.Fatalf("loadConfig: %v", err)
	}
	if len(cfg.Tenants) != 2 {
		t.Fatalf("%d tenants, want 2", len(cfg.Tenants))
	}
	a := cfg.Tenants[0]
	if a.Name != "acme" || a.Token != "s3cret" || a.Workers != 16 || a.Shards != 4 ||
		a.RatePerSec != 200 || a.Burst != 50 || a.MinResponses != 10 {
		t.Errorf("tenant 0 = %+v", a)
	}
	b := cfg.Tenants[1]
	if b.TokenEnv != "BETA_TOKEN" || b.Cluster != "a:7333,b:7333;c:7333" {
		t.Errorf("tenant 1 = %+v", b)
	}
}

func TestLoadConfigRejectsUnknownFields(t *testing.T) {
	path := writeConfig(t, `{"tenants": [{"name": "a", "token": "t", "wrokers": 4}]}`)
	if _, err := loadConfig(path); err == nil || !strings.Contains(err.Error(), "wrokers") {
		t.Fatalf("err = %v, want unknown-field rejection naming the typo", err)
	}
}

func TestLoadConfigRejectsEmptyTenantList(t *testing.T) {
	path := writeConfig(t, `{"tenants": []}`)
	if _, err := loadConfig(path); err == nil || !strings.Contains(err.Error(), "no tenants") {
		t.Fatalf("err = %v, want no-tenants error", err)
	}
}

func TestResolveToken(t *testing.T) {
	if tok, err := resolveToken(tenantSpec{Name: "a", Token: "literal"}); err != nil || tok != "literal" {
		t.Errorf("literal token: %q, %v", tok, err)
	}

	t.Setenv("CROWDGATE_TEST_TOKEN", "from-env")
	// token_env wins over a literal token when both are set.
	spec := tenantSpec{Name: "a", Token: "literal", TokenEnv: "CROWDGATE_TEST_TOKEN"}
	if tok, err := resolveToken(spec); err != nil || tok != "from-env" {
		t.Errorf("env token: %q, %v", tok, err)
	}

	// An empty environment variable is a configuration error, not an
	// empty (universally-matching-nothing but silently weak) token.
	t.Setenv("CROWDGATE_TEST_TOKEN", "")
	if _, err := resolveToken(spec); err == nil || !strings.Contains(err.Error(), "CROWDGATE_TEST_TOKEN") {
		t.Errorf("empty env: err = %v, want error naming the variable", err)
	}

	if _, err := resolveToken(tenantSpec{Name: "a"}); err == nil {
		t.Error("no token at all: want error")
	}
}

func TestParseGroups(t *testing.T) {
	groups, err := parseGroups("a:1,b:2;c:3")
	if err != nil {
		t.Fatalf("parseGroups: %v", err)
	}
	want := [][]string{{"a:1", "b:2"}, {"c:3"}}
	if !reflect.DeepEqual(groups, want) {
		t.Errorf("groups = %v, want %v", groups, want)
	}

	for _, bad := range []string{"", "a:1;;b:2", "a:1,,b:2", " ; "} {
		if _, err := parseGroups(bad); err == nil {
			t.Errorf("parseGroups(%q): want error", bad)
		}
	}
}

func TestBuildTenantValidation(t *testing.T) {
	if _, _, err := buildTenant(tenantSpec{Token: "t", Workers: 4}, nil); err == nil {
		t.Error("empty name: want error")
	}
	if _, _, err := buildTenant(tenantSpec{Name: "a", Token: "t"}, nil); err == nil {
		t.Error("zero workers: want error")
	}
	if _, _, err := buildTenant(tenantSpec{Name: "a", Token: "t", Workers: 4, Cluster: ";"}, nil); err == nil {
		t.Error("malformed cluster spec: want error")
	}

	// A local tenant builds without touching the network; min_responses
	// flows into the pool policy.
	tc, cleanup, err := buildTenant(tenantSpec{Name: "a", Token: "t", Workers: 4, MinResponses: 7}, nil)
	defer cleanup()
	if err != nil {
		t.Fatalf("local tenant: %v", err)
	}
	if tc.Policy == nil || tc.Policy.MinResponses != 7 {
		t.Errorf("policy = %+v, want MinResponses 7", tc.Policy)
	}
	if tc.Manager != nil {
		t.Error("local tenant should leave Manager nil (the gateway builds it)")
	}
}
