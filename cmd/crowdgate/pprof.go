package main

import (
	"net/http"
	"net/http/pprof"
)

// attachPprof mounts the profiling handlers explicitly (rather than
// serving http.DefaultServeMux, which the net/http/pprof import
// populates as a side effect), so profiling is reachable only when
// -pprof asked for it — the same discipline as crowdd's head.
func attachPprof(mux *http.ServeMux) {
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}
