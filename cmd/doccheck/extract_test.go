package main

import "testing"

func TestExtractSelectsOnlyMarkedBlocks(t *testing.T) {
	src := "# Doc\n" +
		"```bash\necho unmarked\n```\n" +
		"<!-- doccheck -->\n" +
		"```bash\necho first\n```\n" +
		"prose\n" +
		"<!-- doccheck -->\n" +
		"\n" +
		"```sh\necho second\n```\n" +
		"<!-- doccheck -->\n" +
		"prose disarms the marker\n" +
		"```bash\necho not this one\n```\n" +
		"<!-- doccheck -->\n" +
		"```go\npackage main\n\nfunc main() {}\n```\n" +
		"<!-- doccheck -->\n" +
		"```json\n{\"not\": \"runnable\"}\n```\n"
	blocks := Extract(src)
	if len(blocks) != 3 {
		t.Fatalf("got %d blocks, want 3: %+v", len(blocks), blocks)
	}
	if blocks[0].Lang != "bash" || blocks[0].Code != "echo first" {
		t.Errorf("block 0 = %+v", blocks[0])
	}
	if blocks[1].Lang != "sh" || blocks[1].Code != "echo second" {
		t.Errorf("block 1 = %+v", blocks[1])
	}
	if blocks[2].Lang != "go" || blocks[2].Code != "package main\n\nfunc main() {}" {
		t.Errorf("block 2 = %+v", blocks[2])
	}
}

func TestExtractRecordsFenceLine(t *testing.T) {
	src := "line one\n<!-- doccheck -->\n```bash\ntrue\n```\n"
	blocks := Extract(src)
	if len(blocks) != 1 || blocks[0].Line != 3 {
		t.Fatalf("got %+v, want one block at line 3", blocks)
	}
}

func TestExtractUnterminatedFence(t *testing.T) {
	src := "<!-- doccheck -->\n```bash\necho dangling\n"
	blocks := Extract(src)
	if len(blocks) != 1 || blocks[0].Code != "echo dangling" {
		t.Fatalf("got %+v, want the dangling block body", blocks)
	}
}
