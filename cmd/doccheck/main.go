// Command doccheck keeps the API reference honest: it extracts fenced
// bash/sh/go code blocks marked with `<!-- doccheck -->` from markdown
// files and executes them against whatever live service the environment
// points at, so a documented route, status code or example that rots
// fails CI instead of misleading a reader.
//
//	doccheck docs/api.md [more.md ...]
//
// bash/sh blocks run under `sh -e` (first failing command fails the
// block) with the caller's environment — CI exports GATE, TOKEN_A and
// TOKEN_B so the documented curl invocations hit the gateway it booted.
// go blocks must be complete main-package programs; each is written into
// a throwaway dot-directory under the current working directory (inside
// the module, so module imports resolve; invisible to ./... patterns)
// and executed with `go run`.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
)

func main() {
	shell := flag.String("shell", "sh", "shell for bash/sh blocks (invoked as <shell> -e)")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "doccheck: at least one markdown file is required")
		os.Exit(2)
	}
	failures := 0
	total := 0
	for _, path := range flag.Args() {
		src, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "doccheck: %v\n", err)
			os.Exit(1)
		}
		blocks := Extract(string(src))
		if len(blocks) == 0 {
			fmt.Fprintf(os.Stderr, "doccheck: %s: no doccheck-marked blocks found\n", path)
			failures++
			continue
		}
		for _, b := range blocks {
			total++
			if err := runBlock(*shell, b); err != nil {
				fmt.Fprintf(os.Stderr, "doccheck: FAIL %s:%d (%s): %v\n", path, b.Line, b.Lang, err)
				failures++
				continue
			}
			fmt.Fprintf(os.Stderr, "doccheck: ok %s:%d (%s)\n", path, b.Line, b.Lang)
		}
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "doccheck: %d of %d blocks failed\n", failures, total)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "doccheck: all %d blocks passed\n", total)
}

// runBlock executes one extracted block, streaming its output through.
func runBlock(shell string, b Block) error {
	switch b.Lang {
	case "bash", "sh":
		cmd := exec.Command(shell, "-e", "-c", b.Code)
		cmd.Stdout, cmd.Stderr = os.Stdout, os.Stderr
		return cmd.Run()
	case "go":
		dir, err := os.MkdirTemp(".", ".doccheck-")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		main := filepath.Join(dir, "main.go")
		if err := os.WriteFile(main, []byte(b.Code), 0o644); err != nil {
			return err
		}
		cmd := exec.Command("go", "run", main)
		cmd.Stdout, cmd.Stderr = os.Stdout, os.Stderr
		return cmd.Run()
	}
	return fmt.Errorf("unsupported block language %q", b.Lang)
}
