package main

import (
	"strings"
)

// Block is one runnable fenced code block extracted from a markdown
// document: the fence language, the code body, and the 1-based line of
// the opening fence for error reporting.
type Block struct {
	Lang string
	Code string
	Line int
}

// marker is the opt-in comment: only a fenced block immediately
// following it (blank lines allowed in between) is executed. Everything
// else in the document is prose and stays inert.
const marker = "<!-- doccheck -->"

// Extract scans a markdown document for doccheck-marked fenced code
// blocks. A block is selected when the line `<!-- doccheck -->` appears
// above its opening fence with only blank lines in between; the fence
// language must be bash, sh or go. An armed marker that reaches a
// non-blank, non-fence line disarms — prose between marker and fence
// means the marker was decorative.
func Extract(src string) []Block {
	var blocks []Block
	lines := strings.Split(src, "\n")
	armed := false
	for i := 0; i < len(lines); i++ {
		line := strings.TrimSpace(lines[i])
		if line == marker {
			armed = true
			continue
		}
		if !strings.HasPrefix(line, "```") {
			if armed && line != "" {
				armed = false
			}
			continue
		}
		lang := strings.TrimSpace(strings.TrimPrefix(line, "```"))
		fenceLine := i + 1
		var body []string
		for i++; i < len(lines); i++ {
			if strings.TrimSpace(lines[i]) == "```" {
				break
			}
			body = append(body, lines[i])
		}
		if armed && (lang == "bash" || lang == "sh" || lang == "go") {
			code := strings.TrimRight(strings.Join(body, "\n"), "\n")
			blocks = append(blocks, Block{Lang: lang, Code: code, Line: fenceLine})
		}
		armed = false
	}
	return blocks
}
