package crowdassess_test

import (
	"math"
	"testing"

	"crowdassess"
)

// buildCrowd simulates a small binary crowd through the public API only.
func buildCrowd(t *testing.T, seed int64, workers, tasks int, density float64) (*crowdassess.Dataset, []float64) {
	t.Helper()
	src := crowdassess.NewSimSource(seed)
	ds, rates, err := crowdassess.BinarySim{
		Tasks:   tasks,
		Workers: workers,
		Density: density,
	}.Generate(src)
	if err != nil {
		t.Fatal(err)
	}
	return ds, rates
}

func TestPublicEvaluateWorkers(t *testing.T) {
	ds, rates := buildCrowd(t, 1, 7, 300, 0.8)
	ests, err := crowdassess.EvaluateWorkers(ds, crowdassess.Options{Confidence: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	contained := 0
	for _, e := range ests {
		if e.Err != nil {
			continue
		}
		if e.Interval.Contains(rates[e.Worker]) {
			contained++
		}
	}
	if contained < 5 {
		t.Errorf("only %d/7 intervals contain the truth", contained)
	}
}

func TestPublicEvaluateTriple(t *testing.T) {
	ds, rates := buildCrowd(t, 2, 3, 2000, 1)
	ivs, err := crowdassess.EvaluateTriple(ds, [3]int{0, 1, 2}, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	for w := 0; w < 3; w++ {
		if math.Abs(ivs[w].Mean-rates[w]) > 0.06 {
			t.Errorf("worker %d mean %v vs true %v", w, ivs[w].Mean, rates[w])
		}
	}
}

func TestPublicKAry(t *testing.T) {
	src := crowdassess.NewSimSource(3)
	confs := crowdassess.PaperConfusionMatrices(3)
	ds, workerConfs, err := crowdassess.KArySim{
		Tasks:            3000,
		Workers:          3,
		ConfusionChoices: confs,
	}.Generate(src)
	if err != nil {
		t.Fatal(err)
	}
	est, err := crowdassess.EstimateResponseMatrices(ds, [3]int{0, 1, 2},
		crowdassess.KAryOptions{Confidence: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	for w := 0; w < 3; w++ {
		for a := 0; a < 3; a++ {
			if math.Abs(est.Prob[w].At(a, a)-workerConfs[w][a][a]) > 0.12 {
				t.Errorf("worker %d diagonal %d: %v vs %v",
					w, a, est.Prob[w].At(a, a), workerConfs[w][a][a])
			}
		}
	}
}

func TestPublicPruneAndMajority(t *testing.T) {
	src := crowdassess.NewSimSource(4)
	ds, _, err := crowdassess.BinarySim{
		Tasks:      300,
		Workers:    6,
		ErrorRates: []float64{0.1, 0.1, 0.15, 0.2, 0.49, 0.5},
	}.Generate(src)
	if err != nil {
		t.Fatal(err)
	}
	pruned, keep, err := crowdassess.PruneSpammers(ds, 0)
	if err != nil {
		t.Fatal(err)
	}
	if pruned.Workers() >= 6 {
		t.Error("no spammer pruned")
	}
	for _, w := range keep {
		if w >= 4 {
			t.Errorf("spammer %d kept", w)
		}
	}
	maj := crowdassess.MajorityVote(ds)
	correct := 0
	for task, v := range maj {
		if v == ds.Truth(task) {
			correct++
		}
	}
	if float64(correct)/float64(len(maj)) < 0.9 {
		t.Errorf("majority accuracy %v", float64(correct)/float64(len(maj)))
	}
}

func TestPublicBaselines(t *testing.T) {
	ds, rates := buildCrowd(t, 5, 5, 400, 1)
	res, err := crowdassess.DawidSkene{}.Fit(ds)
	if err != nil {
		t.Fatal(err)
	}
	for w, want := range rates {
		if math.Abs(res.ErrorRate[w]-want) > 0.08 {
			t.Errorf("EM worker %d: %v vs %v", w, res.ErrorRate[w], want)
		}
	}
	ivs, err := crowdassess.OldTechnique{Confidence: 0.9}.Evaluate(ds)
	if err != nil {
		t.Fatal(err)
	}
	if len(ivs) != 5 {
		t.Fatalf("%d old-technique intervals", len(ivs))
	}
}

func TestPublicExperiments(t *testing.T) {
	names := crowdassess.ExperimentNames()
	if len(names) != 11 { // nine paper figures + two extension experiments
		t.Fatalf("%d experiments", len(names))
	}
	res, err := crowdassess.RunExperiment("fig2c", crowdassess.ExperimentParams{Replicates: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Name != "fig2c" || len(res.Series) != 2 {
		t.Errorf("unexpected result %q with %d series", res.Name, len(res.Series))
	}
}

func TestPublicDatasetRoundTrip(t *testing.T) {
	ds, _ := buildCrowd(t, 6, 3, 20, 0.7)
	// SelectWorkers + JSON round trip through the facade aliases.
	sub, err := ds.SelectWorkers([]int{2, 0})
	if err != nil {
		t.Fatal(err)
	}
	if sub.Workers() != 2 {
		t.Fatalf("workers = %d", sub.Workers())
	}
}
