module crowdassess

go 1.24
