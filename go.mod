module crowdassess

go 1.23
