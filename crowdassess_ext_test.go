package crowdassess_test

import (
	"math"
	"strings"
	"sync"
	"testing"

	"crowdassess"
)

func TestPublicReadDatasetCSV(t *testing.T) {
	in := strings.NewReader("worker,task,response,truth\nann,t1,1,1\nbob,t1,2,1\nann,t2,2,\n")
	ds, workers, tasks, err := crowdassess.ReadDatasetCSV(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(workers) != 2 || len(tasks) != 2 {
		t.Fatalf("%d workers, %d tasks", len(workers), len(tasks))
	}
	if ds.Response(0, 0) != crowdassess.Yes || ds.Response(1, 0) != crowdassess.No {
		t.Error("responses misplaced")
	}
	if ds.Truth(0) != crowdassess.Yes {
		t.Error("truth lost")
	}
}

func TestPublicIncremental(t *testing.T) {
	ds, rates := buildCrowd(t, 30, 5, 200, 1)
	inc, err := crowdassess.NewIncremental(5)
	if err != nil {
		t.Fatal(err)
	}
	for task := 0; task < ds.Tasks(); task++ {
		for w := 0; w < 5; w++ {
			if err := inc.Add(w, task, ds.Response(w, task)); err != nil {
				t.Fatal(err)
			}
		}
	}
	ests, err := inc.EvaluateAll(crowdassess.Options{Confidence: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ests {
		if e.Err != nil {
			t.Errorf("worker %d: %v", e.Worker, e.Err)
			continue
		}
		if math.Abs(e.Interval.Mean-rates[e.Worker]) > 0.12 {
			t.Errorf("worker %d: mean %v vs true %v", e.Worker, e.Interval.Mean, rates[e.Worker])
		}
	}
}

// TestPublicShardedIncremental drives the concurrent evaluator through the
// facade: parallel ingestion, then intervals identical to the single-shard
// evaluator's on the same responses.
func TestPublicShardedIncremental(t *testing.T) {
	ds, _ := buildCrowd(t, 30, 5, 200, 1)
	single, err := crowdassess.NewIncremental(5)
	if err != nil {
		t.Fatal(err)
	}
	var sharded crowdassess.StreamingEvaluator
	sharded, err = crowdassess.NewStreamingEvaluator(5, crowdassess.IncrementalOptions{Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := sharded.(*crowdassess.ShardedIncremental); !ok {
		t.Fatalf("NewStreamingEvaluator(Shards: 3) = %T", sharded)
	}
	var wg sync.WaitGroup
	for w := 0; w < 5; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for task := 0; task < ds.Tasks(); task++ {
				if err := sharded.Add(w, task, ds.Response(w, task)); err != nil {
					t.Errorf("worker %d task %d: %v", w, task, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for task := 0; task < ds.Tasks(); task++ {
		for w := 0; w < 5; w++ {
			if err := single.Add(w, task, ds.Response(w, task)); err != nil {
				t.Fatal(err)
			}
		}
	}
	opts := crowdassess.Options{Confidence: 0.9}
	want, err := single.EvaluateAll(opts)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sharded.EvaluateAll(opts)
	if err != nil {
		t.Fatal(err)
	}
	for w := range want {
		if (want[w].Err == nil) != (got[w].Err == nil) || got[w].Interval != want[w].Interval {
			t.Errorf("worker %d: sharded %+v vs single %+v", w, got[w], want[w])
		}
	}
}

func TestPublicPool(t *testing.T) {
	src := crowdassess.NewSimSource(31)
	rates := []float64{0.05, 0.1, 0.15, 0.48}
	ds, _, err := crowdassess.BinarySim{Tasks: 300, Workers: 4, ErrorRates: rates}.Generate(src)
	if err != nil {
		t.Fatal(err)
	}
	p, err := crowdassess.NewPool(4, crowdassess.DefaultPoolPolicy())
	if err != nil {
		t.Fatal(err)
	}
	for task := 0; task < 300; task++ {
		for w := 0; w < 4; w++ {
			if p.State(w) == crowdassess.Fired {
				continue
			}
			if err := p.Record(w, task, ds.Response(w, task)); err != nil {
				t.Fatal(err)
			}
		}
		if task%50 == 49 {
			if _, err := p.Review(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if p.State(3) != crowdassess.Fired {
		t.Errorf("spammer state = %v", p.State(3))
	}
	for w := 0; w < 3; w++ {
		if p.State(w) == crowdassess.Fired {
			t.Errorf("good worker %d fired", w)
		}
	}
}

func TestPublicAggregation(t *testing.T) {
	ds, rates := buildCrowd(t, 32, 5, 300, 1)
	ests, err := crowdassess.EvaluateWorkers(ds, crowdassess.Options{Confidence: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	useRates := make([]float64, len(rates))
	for _, e := range ests {
		if e.Err == nil {
			useRates[e.Worker] = e.Interval.Mean
		} else {
			useRates[e.Worker] = 0.49
		}
	}
	weighted, err := crowdassess.WeightedBinaryAnswers(ds, useRates)
	if err != nil {
		t.Fatal(err)
	}
	wAcc, n := crowdassess.AnswerAccuracy(ds, weighted)
	if n != 300 {
		t.Fatalf("scored %d tasks", n)
	}
	mAcc, _ := crowdassess.AnswerAccuracy(ds, crowdassess.MajorityAnswers(ds))
	if wAcc < mAcc-0.02 {
		t.Errorf("weighted %v well below majority %v", wAcc, mAcc)
	}
	if wAcc < 0.9 {
		t.Errorf("weighted accuracy %v", wAcc)
	}
}

func TestPublicKAryPanel(t *testing.T) {
	src := crowdassess.NewSimSource(33)
	ds, confs, err := crowdassess.KArySim{
		Tasks:            2500,
		Workers:          5,
		ConfusionChoices: crowdassess.PaperConfusionMatrices(2),
	}.Generate(src)
	if err != nil {
		t.Fatal(err)
	}
	ests, err := crowdassess.EvaluateWorkersKAry(ds, crowdassess.KAryPanelOptions{Confidence: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ests {
		if e.Err != nil {
			t.Errorf("worker %d: %v", e.Worker, e.Err)
			continue
		}
		for a := 0; a < 2; a++ {
			if math.Abs(e.Mean.At(a, a)-confs[e.Worker][a][a]) > 0.08 {
				t.Errorf("worker %d diag %d: %v vs %v",
					e.Worker, a, e.Mean.At(a, a), confs[e.Worker][a][a])
			}
		}
	}
}
